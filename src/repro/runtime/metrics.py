"""Runtime metrics: the Fig. 16 time-breakdown accounting.

Every core (worker or master) accumulates busy virtual-seconds by
category; idle time is derived from the run makespan.  The report can
be printed in the layout of the paper's Fig. 16: average seconds per
core, stacked by category.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


from .._util import ReproError
from .costmodel import CATEGORIES

__all__ = ["Breakdown", "DeadlineExceeded", "RunReport", "trace_fields"]


#: Which runtime layer owns each event kind (perf_summary grouping).
_EVENT_LAYER = {
    "run_start": "scheduler",
    "run_end": "scheduler",
    "requeue": "scheduler",
    "msg_arrive": "transport",
    "deliver": "transport",
    "ack": "transport",
    "nack": "transport",
    "timer": "transport",
    "hedge": "transport",
    "crash": "recovery",
    "failover": "recovery",
    "ckpt": "recovery",
    "health": "recovery",
    "hbeat": "recovery",
    "hback": "recovery",
    "restart": "recovery",
}


class Breakdown:
    """Busy-time accumulator over a set of cores."""

    def __init__(self):
        self.by_category: dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.core_busy: dict[tuple, float] = {}

    def add(self, core: tuple, category: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative time")
        self.by_category[category] = (
            self.by_category.get(category, 0.0) + seconds
        )
        self.core_busy[core] = self.core_busy.get(core, 0.0) + seconds

    def add_run(self, core: tuple, kernel: float, graph_op: float,
                pack: float, sched: float) -> None:
        """Fused hot-path form of four :meth:`add` calls for one run.

        Per-category accumulation is identical to four ``add`` calls;
        the per-core busy total folds the four parts in one update.
        """
        by = self.by_category
        by["kernel"] = by.get("kernel", 0.0) + kernel
        by["graph_op"] = by.get("graph_op", 0.0) + graph_op
        by["pack"] = by.get("pack", 0.0) + pack
        by["sched"] = by.get("sched", 0.0) + sched
        cb = self.core_busy
        # Fold the parts one at a time: the identical left-to-right
        # float sequence as four separate ``add`` calls.
        cb[core] = cb.get(core, 0.0) + kernel + graph_op + pack + sched

    def finalize_idle(self, makespan: float, cores: list[tuple]) -> None:
        """Charge (makespan - busy) of every core to the idle category."""
        idle = 0.0
        for core in cores:
            idle += max(0.0, makespan - self.core_busy.get(core, 0.0))
        self.by_category["idle"] = idle

    def total(self) -> float:
        return sum(self.by_category.values())

    def fractions(self) -> dict[str, float]:
        t = self.total()
        if t <= 0:
            return {c: 0.0 for c in self.by_category}
        return {c: v / t for c, v in self.by_category.items()}

    # -- durability (snapshot/restore) -----------------------------------

    def state_dict(self) -> dict:
        """Codec-ready accumulator state (insertion order preserved -
        it decides the left-to-right float folds of later adds)."""
        return {
            "by_category": dict(self.by_category),
            "core_busy": dict(self.core_busy),
        }

    def load_state_dict(self, d: dict) -> None:
        self.by_category = dict(d["by_category"])
        self.core_busy = dict(d["core_busy"])


class DeadlineExceeded(ReproError):
    """A run overran its virtual-time budget and was cancelled.

    Raised by :meth:`DataDrivenRuntime.run` when a ``deadline`` was
    given and the simulated clock passed it: the event loop stops at
    the first event beyond the budget, finalizes the partial
    :class:`RunReport` (so the consumed slice is accounted) and
    unwinds.  The job layer above uses :attr:`report` to reclaim the
    cluster slice and attach the partial accounting to the failure;
    nothing of the run survives the exception - a cancelled run holds
    no global state.
    """

    def __init__(self, deadline: float, now: float, report: RunReport):
        self.deadline = deadline
        self.now = now  # virtual time of the first event past the budget
        self.report = report  # partial accounting up to the cancellation
        super().__init__(
            f"run cancelled: virtual time reached {now:.6f}s, past its "
            f"budget of {deadline:.6f}s ({report.events} events processed)"
        )


@dataclass
class RunReport:
    """Outcome of one DES run."""

    makespan: float
    breakdown: Breakdown
    total_cores: int
    executions: int = 0
    local_streams: int = 0
    messages: int = 0
    message_bytes: int = 0
    stream_items: int = 0  # payload items across local + remote streams
    vertices_solved: int = 0
    events: int = 0
    termination_hops: int = 0
    termination_time: float = 0.0

    # -- hot-path performance accounting (perf_summary) -----------------
    #: Host seconds of the event loop.  Stamped by the *caller* (the
    #: bench harness), never inside src/repro: the simulation itself is
    #: a pure function of (mesh, partition, seed) and must not read the
    #: host clock (lint rule DET001).  0.0 = not measured.
    wall_time: float = 0.0
    peak_heap: int = 0  # high-water event-heap occupancy
    #: Events processed by kind (from ``Simulator.event_counts``).
    event_counts: dict = field(default_factory=dict)

    #: Structured event trace (populated when the runtime is built with
    #: ``trace=True``): one TraceEvent per processed simulator event.
    trace_events: list = field(default_factory=list)

    #: Out-of-band happens-before records (``hb_*`` notes; also only
    #: with ``trace=True``), kept separate from :attr:`trace_events` so
    #: the per-event trace and its Chrome export stay 1:1 with
    #: :attr:`events`.  Consumed by :func:`repro.analysis.hb.check_report`.
    hb_events: list = field(default_factory=list)

    # -- fault & recovery counters (all zero on reliable runs) ----------
    drops: int = 0  # remote messages lost by fault injection
    duplicates: int = 0  # remote messages duplicated in flight
    retries: int = 0  # retransmissions after ack timeout
    timeouts: int = 0  # ack-timer expiries on unacked messages
    reexecutions: int = 0  # runs of programs in a post-failover epoch
    checkpoints: int = 0  # program snapshots taken
    crashes: int = 0  # processes lost (ignoring post-quiescence crashes)
    failover_time: float = 0.0  # virtual time from crash to re-install
    partition_drops: int = 0  # messages black-holed by a link partition
    corruptions: int = 0  # payloads bit-flipped in flight
    nacks: int = 0  # checksum-mismatch rejections (fast retransmit)
    cascade_crashes: int = 0  # crashes induced by a cascading CrashFault
    sanitizer_checks: int = 0  # invariant assertions evaluated (sanitize=True)

    # -- adaptive-resilience counters (all zero when AdaptiveConfig off) --
    rtt_samples: int = 0  # clean (Karn-admissible) RTT measurements
    hedged_sends: int = 0  # speculative extra copies of tail messages
    speculative_launches: int = 0  # backup executions booked
    speculative_wins: int = 0  # backups that completed before the primary
    speculative_wasted: int = 0  # backups discarded (primary finished first)
    backpressure_stalls: int = 0  # sends parked by exhausted inbox credits
    demotions: int = 0  # slow-but-alive procs rebalanced away
    forwards: int = 0  # in-flight messages forwarded to a program's new owner

    # -- durability counters (zero when snapshotting is off) -------------
    snapshots: int = 0  # crash-consistent runtime snapshots written
    snapshot_bytes: int = 0  # total bytes published to snapshot files

    # -- elastic-membership counters (zero when MembershipConfig off) -----
    heartbeats: int = 0  # probe replies scheduled by the heartbeat plane
    suspicions: int = 0  # procs suspected after a missed-probe timeout
    false_suspicions: int = 0  # suspicions of slow-but-alive stragglers
    fenced_messages: int = 0  # arrivals rejected as a stale incarnation
    restarts: int = 0  # planned rank restarts that came back
    rejoins: int = 0  # ranks re-admitted (restart or cleared suspicion)
    promotions: int = 0  # demotions reversed after healthy probes
    rebalanced_patches: int = 0  # patches pulled back to rejoined ranks

    @property
    def core_seconds(self) -> float:
        return self.makespan * self.total_cores

    def overhead_fraction(self) -> float:
        """graph-op + pack/unpack share of total core time (Fig. 16's
        'overhead introduced by JSweep')."""
        f = self.breakdown.fractions()
        return f["graph_op"] + f["pack"] + f["unpack"] + f["sched"]

    def idle_fraction(self) -> float:
        return self.breakdown.fractions()["idle"]

    def comm_fraction(self) -> float:
        return self.breakdown.fractions()["comm"]

    def recovery_fraction(self) -> float:
        """Checkpoint + failover share of total core time."""
        return self.breakdown.fractions()["recovery"]

    def fault_summary(self) -> dict[str, float]:
        """The resilience counters in one dict (benchmark reporting)."""
        return {
            "drops": self.drops,
            "duplicates": self.duplicates,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "reexecutions": self.reexecutions,
            "checkpoints": self.checkpoints,
            "crashes": self.crashes,
            "failover_time": self.failover_time,
            "partition_drops": self.partition_drops,
            "corruptions": self.corruptions,
            "nacks": self.nacks,
            "cascade_crashes": self.cascade_crashes,
            "recovery_time": self.breakdown.by_category.get("recovery", 0.0),
        }

    def adaptive_summary(self) -> dict[str, float]:
        """The adaptive-resilience counters in one dict."""
        return {
            "rtt_samples": self.rtt_samples,
            "hedged_sends": self.hedged_sends,
            "speculative_launches": self.speculative_launches,
            "speculative_wins": self.speculative_wins,
            "speculative_wasted": self.speculative_wasted,
            "backpressure_stalls": self.backpressure_stalls,
            "demotions": self.demotions,
            "forwards": self.forwards,
            "backpressure_time": self.breakdown.by_category.get(
                "backpressure", 0.0
            ),
            "speculation_time": self.breakdown.by_category.get(
                "speculation", 0.0
            ),
        }

    def membership_summary(self) -> dict[str, float]:
        """The elastic-membership counters in one dict (DESIGN.md §14)."""
        return {
            "heartbeats": self.heartbeats,
            "suspicions": self.suspicions,
            "false_suspicions": self.false_suspicions,
            "fenced_messages": self.fenced_messages,
            "restarts": self.restarts,
            "rejoins": self.rejoins,
            "promotions": self.promotions,
            "rebalanced_patches": self.rebalanced_patches,
        }

    def perf_summary(self) -> dict:
        """Hot-path performance view of the run (a first-class artifact).

        Events per host-second, peak event-heap occupancy, and event
        counts grouped by owning runtime layer.  ``events_per_sec`` is
        0.0 unless the caller stamped :attr:`wall_time` around the run.
        """
        per_layer: dict[str, int] = {}
        for kind, n in self.event_counts.items():
            layer = _EVENT_LAYER.get(kind, "other")
            per_layer[layer] = per_layer.get(layer, 0) + n
        return {
            "events": self.events,
            "wall_time_s": self.wall_time,
            "events_per_sec": (
                self.events / self.wall_time if self.wall_time > 0 else 0.0
            ),
            "peak_heap": self.peak_heap,
            "event_counts": dict(self.event_counts),
            "per_layer_events": per_layer,
        }

    def avg_seconds_per_core(self) -> dict[str, float]:
        """Fig. 16's y-axis: average time per core, by category.

        A degenerate report (zero cores: an admission-rejected or
        never-composed run) averages to zero rather than dividing by
        zero.
        """
        if self.total_cores <= 0:
            return {c: 0.0 for c in self.breakdown.by_category}
        return {
            c: v / self.total_cores
            for c, v in self.breakdown.by_category.items()
        }

    # -- durability (snapshot/restore) -----------------------------------

    #: Fields excluded from the snapshot stream: the breakdown nests its
    #: own state dict; event counts are re-stamped at finish from the
    #: simulator's (persisted) pop counters; traces are incompatible
    #: with snapshotting (the engine rejects the combination).
    _SKIP_STATE = ("breakdown", "trace_events", "hb_events", "event_counts")

    def state_dict(self) -> dict:
        d = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in self._SKIP_STATE
        }
        d["breakdown"] = self.breakdown.state_dict()
        return d

    def load_state_dict(self, d: dict) -> None:
        for f in fields(self):
            if f.name not in self._SKIP_STATE:
                setattr(self, f.name, d[f.name])
        self.breakdown.load_state_dict(d["breakdown"])

    def format_breakdown(self, label: str = "") -> str:
        rows = self.avg_seconds_per_core()
        parts = [f"{label} makespan={self.makespan:.4f}s"]
        # Dynamic categories (e.g. backpressure/speculation) only exist
        # when something was booked under them; show them after the
        # canonical Fig. 16 stack.
        extra = sorted(set(self.breakdown.by_category) - set(CATEGORIES))
        for c in (*CATEGORIES, *extra):
            parts.append(f"  {c:>12}: {rows[c]:.4f}s ({self.breakdown.fractions()[c] * 100:5.1f}%)")
        return "\n".join(parts)

    def to_chrome_trace(self) -> dict:
        """Chrome-trace-format view of :attr:`trace_events`.

        Loadable in ``chrome://tracing`` / Perfetto.  Program runs
        become begin/end duration slices on their worker-core track
        (``run_start`` fires at dispatch, so a slice includes any wait
        for the booked core; a crash can leave a dangling begin, which
        viewers extend to the end of the trace).  All other events are
        thread-scoped instants.  Timestamps are virtual microseconds.
        """
        evs = []
        for te in self.trace_events:
            tid = "/".join(str(c) for c in te.core) if te.core else "events"
            ev = {
                "name": te.program if te.kind in ("run_start", "run_end")
                and te.program else te.kind,
                "ph": {"run_start": "B", "run_end": "E"}.get(te.kind, "i"),
                "ts": te.time * 1e6,
                "pid": te.proc if te.proc is not None else 0,
                "tid": tid,
            }
            if ev["ph"] == "i":
                ev["s"] = "t"
                ev["args"] = {"kind": te.kind}
                if te.program is not None:
                    ev["args"]["program"] = te.program
            evs.append(ev)
        return {"traceEvents": evs, "displayTimeUnit": "ms"}


def trace_fields(kind: str, data, pids=None) -> tuple:
    """(proc, core, program) of one runtime event, for the structured
    trace (the engine passes this to the simulator's trace hook).

    ``pids`` maps the dense program indices carried by hot-path event
    payloads (run_start/run_end/deliver) back to their ProgramId, so
    trace labels keep the stable ``(patch,task)`` form regardless of
    the interning.  Requeue payloads carry the ProgramId itself.
    """
    if kind in ("run_start", "run_end"):
        i = data[2]
        return data[0], ("w", data[0], data[1]), str(pids[i] if pids else i)
    if kind == "msg_arrive":
        return data[0], None, str(data[1].dst)
    if kind == "deliver":
        i = data[0]
        return None, None, str(pids[i] if pids else i)
    if kind == "requeue":
        return None, None, str(data[0])
    if kind in ("crash", "failover", "ckpt", "restart"):
        return data, None, None
    if kind == "hback":
        return data[0], None, None
    return None, None, None  # ack, nack, timer, hedge, hbeat, health

"""Snapshot assembly and restore for the composed runtime (DESIGN.md §13).

The engine stays a thin composition root; this module owns the
durable-execution glue around it: the snapshot *schema* (which layer
state dicts compose into one versioned snapshot, stamped with a
configuration digest), the crash-injection signal, and the inverse
operation - loading a snapshot into a freshly composed, structurally
identical runtime stack.

Layering: sits beside ``engine_des`` (imported by it, never the other
way); every function takes the runtime instance explicitly.  Bytes on
disk are :mod:`repro.persist`'s business - here a snapshot is a plain
state dict.
"""

from __future__ import annotations

import hashlib
from types import SimpleNamespace

from .._util import ReproError

__all__ = ["HostKilled", "SNAPSHOT_VERSION"]

#: Version stamp of the composed runtime snapshot layout (the codec
#: frames carry their own wire version; this one tracks the *schema*
#: of the state dict assembled here).
SNAPSHOT_VERSION = 1


class HostKilled(ReproError):
    """The injected host crash fired: the run was cut mid-loop.

    Raised by ``DataDrivenRuntime.run`` when a snapshot manager with a
    ``kill_at`` event index was supplied (the durability harness's
    fault injection).  Nothing of the run survives in the process -
    recovery goes through the on-disk snapshots via
    ``DataDrivenRuntime.resume``.
    """

    def __init__(self, popped: int):
        self.popped = popped
        super().__init__(
            f"host killed after {popped} popped events (injected crash)"
        )


def check_persist(rt, persist) -> None:
    """Snapshotting composes with everything except trace/sanitize."""
    if persist is not None and (rt.trace or rt.sanitize):
        raise ReproError(
            "snapshotting is incompatible with trace/sanitize runs: "
            "trace buffers and sanitizer shadow state are not part "
            "of the snapshot schema"
        )


def config_digest(rt, nprograms: int) -> str:
    """Fingerprint of everything a snapshot implicitly assumes.

    A snapshot only loads into a *structurally identical* composition:
    same layout, mode, termination protocol, machine model, fault
    plan, recovery config and program count.  The digest is embedded
    in every snapshot and checked on restore.
    """
    sig = repr((
        rt.layout, rt.mode, rt.termination, rt.machine,
        rt.faults, rt.recovery, nprograms,
    ))
    return hashlib.sha256(sig.encode()).hexdigest()[:16]


def assemble_state(rt, ctx: SimpleNamespace) -> dict:
    """Assemble the crash-consistent snapshot of an active run."""
    persist = ctx.persist
    app = None
    if persist is not None and persist.app_state is not None:
        app = persist.app_state.capture()
    return {
        "version": SNAPSHOT_VERSION,
        "config": config_digest(rt, len(ctx.st.progs)),
        "popped": ctx.popped,
        "cascaded": sorted(ctx.cascaded),
        "sim": ctx.sim.state_dict(),
        "router": ctx.router.state_dict(),
        "transport": ctx.transport.state_dict(),
        "scheduler": ctx.sched.state_dict(),
        "runstate": ctx.st.state_dict(),
        "recovery": ctx.rec.state_dict() if ctx.ft else None,
        "tracker": ctx.tracker.state_dict(),
        "report": ctx.report.state_dict(),
        "injector": ctx.inj.state_dict() if ctx.inj is not None else None,
        "app": app,
    }


def save_snapshot(rt, ctx: SimpleNamespace) -> None:
    """Publish one snapshot generation through ``ctx.persist``."""
    n = ctx.persist.save(assemble_state(rt, ctx))
    ctx.report.snapshots += 1
    ctx.report.snapshot_bytes += n


def restore_into(rt, programs, patch_proc, state, persist) -> SimpleNamespace:
    """Compose a fresh runtime stack on ``rt`` and load ``state`` into it.

    ``programs`` must be freshly-constructed instances of the same
    program set the snapshot was taken over (their mutable context is
    overwritten from the snapshot).  Returns the loaded composition
    context; ``DataDrivenRuntime.resume`` drives it to completion.
    """
    if not isinstance(state, dict) or state.get("version") != SNAPSHOT_VERSION:
        raise ReproError(
            f"unsupported snapshot version {state.get('version')!r} "
            f"(this runtime writes version {SNAPSHOT_VERSION})"
        )
    ctx = rt._compose(programs, patch_proc, persist)
    want = config_digest(rt, len(ctx.st.progs))
    if state.get("config") != want:
        raise ReproError(
            "snapshot was taken under a different runtime "
            f"configuration (digest {state.get('config')!r}, this "
            f"composition is {want!r})"
        )
    ctx.sim.load_state_dict(state["sim"])
    # Defensive: re-intern the layers' cached kind ids against the
    # loaded kind table (its prefix is composition-deterministic, so
    # these are no-ops unless the schema ever changes).
    t, sch, sim = ctx.transport, ctx.sched, ctx.sim
    t._k_msg_arrive = sim.kind_id("msg_arrive")
    t._k_ack = sim.kind_id("ack")
    t._k_nack = sim.kind_id("nack")
    t._k_timer = sim.kind_id("timer")
    sch._k_run_start = sim.kind_id("run_start")
    sch._k_run_end = sim.kind_id("run_end")
    sch._k_deliver = sim.kind_id("deliver")
    ctx.router.load_state_dict(state["router"])
    ctx.transport.load_state_dict(state["transport"])
    ctx.sched.load_state_dict(state["scheduler"])
    ctx.st.load_state_dict(state["runstate"])
    if ctx.ft:
        ctx.rec.load_state_dict(state["recovery"])
    ctx.tracker.load_state_dict(state["tracker"])
    ctx.report.load_state_dict(state["report"])
    if ctx.inj is not None and state["injector"] is not None:
        ctx.inj.load_state_dict(state["injector"])
    ctx.cascaded = set(state["cascaded"])
    ctx.popped = int(state["popped"])
    ctx.next_snap = (
        ctx.popped + persist.every if persist is not None else 0
    )
    ctx.resumed = True
    if state["app"] is not None:
        if persist is None or persist.app_state is None:
            raise ReproError(
                "snapshot carries application array state but no "
                "app_state handler was supplied to restore it"
            )
        persist.app_state.restore(state["app"])
    return ctx

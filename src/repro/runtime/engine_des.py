"""Discrete-event-simulated data-driven runtime (Sec. IV): the
composition root over the layered simulator substrate.

Executes patch-programs with the exact semantics of the serial engine,
but on a simulated multicore cluster (master thread routing streams,
worker threads executing programs, per Fig. 8).  Because the *real*
algorithm runs, every schedule-level phenomenon of the paper emerges
rather than being modeled; only the time axis is synthetic (DESIGN.md).
The machinery lives in layers, each documented in its own module:
``simulator`` < ``router`` < ``transport`` < ``scheduler`` <
``recovery``, with the event loops in ``fastloop`` (batched clean
runs) and ``generalloop`` (everything else) and the snapshot schema in
``checkpoint`` (DESIGN.md §13).

:class:`DataDrivenRuntime` validates the run, wires the layers
together, drives the master event loop (Alg. 1), and negotiates
termination.  With ``trace=True`` every processed event is recorded on
``RunReport.trace_events`` (exportable via ``to_chrome_trace``).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from .._util import ReproError
from ..core.patch_program import PatchProgram
from ..core.termination import MisraMarkerRing, WorkloadTracker, verify_quiescent
from .checkpoint import (
    SNAPSHOT_VERSION, HostKilled, assemble_state, check_persist, restore_into,
)
from .cluster import Machine, TIANHE2
from .costmodel import CostModel
from .fastloop import clean_loop
from .faults import (
    AdaptiveConfig, FaultInjector, FaultPlan, RecoveryConfig, arm_recovery,
)
from .generalloop import general_loop
from .metrics import Breakdown, DeadlineExceeded, RunReport, trace_fields
from .recovery import RecoveryManager
from .router import Router
from .sanitizer import InvariantSanitizer
from .scheduler import RunState, Scheduler, make_policy
from .simulator import Simulator
from .transport import Transport

__all__ = ["DataDrivenRuntime", "DeadlineExceeded", "HostKilled", "SNAPSHOT_VERSION"]

#: Forward-progress kinds (outstanding count = quiescence detector).
_PROGRESS = frozenset(("run_start", "run_end", "msg_arrive", "deliver", "failover", "requeue"))


class DataDrivenRuntime:
    """DES executor for patch-programs on a simulated cluster."""

    def __init__(
        self,
        total_cores: int,
        machine: Machine = TIANHE2,
        cost: CostModel | None = None,
        mode: str = "hybrid",
        termination: str = "workload",
        faults: FaultPlan | None = None,
        recovery: RecoveryConfig | None = None,
        adaptive: AdaptiveConfig | None = None,
        trace: bool = False,
        sanitize: bool = False,
    ):
        if termination not in ("workload", "consensus"):
            raise ReproError(f"unknown termination mode {termination!r}")
        self.machine = machine
        self.cost = cost if cost is not None else CostModel()
        self.layout = machine.layout(total_cores, mode)
        self.mode = mode
        self.termination = termination
        self.faults = faults
        # Armed explicitly, by a lossy plan, or by an adaptive config.
        self.recovery = arm_recovery(faults, recovery, adaptive)
        self.trace = trace
        self.sanitize = sanitize  # live invariant checks (chaos harness)

    def run(
        self,
        programs: list[PatchProgram],
        patch_proc: np.ndarray,
        deadline: float | None = None,
        persist=None,
    ) -> RunReport:
        """Execute ``programs`` to global termination; returns the report.

        ``patch_proc[p]`` is the owning process of patch ``p``;
        ``deadline`` an optional virtual-time budget; ``persist`` an
        optional snapshot manager (see :mod:`repro.persist`).
        """
        if deadline is not None and deadline <= 0:
            raise ReproError("run deadline must be positive")
        check_persist(self, persist)
        ctx = self._compose(programs, patch_proc, persist)
        self._seed(ctx)
        self._ctx = ctx
        try:
            self._drive(ctx, deadline)
        finally:
            self._ctx = None
        return self._finish(ctx)

    # -- composition ---------------------------------------------------------------

    def _compose(self, programs, patch_proc, persist=None) -> SimpleNamespace:
        """Wire the runtime layers together (no events scheduled yet).

        A pure function of configuration + program set, so a restarted
        process composes a structurally identical stack - which is
        what lets :meth:`restore` load a snapshot into it.
        """
        lay = self.layout
        router = Router(programs, patch_proc, lay.nprocs)
        plan, rcfg = self.faults, self.recovery
        if plan is not None:
            wd = rcfg.watchdog_horizon if rcfg is not None else None
            plan.validate(lay.nprocs, programs, horizon=wd)
        inj = FaultInjector(plan) if plan is not None else None
        ft = rcfg is not None  # ack/retry + checkpoint/failover machinery on
        acfg = rcfg.adaptive if ft else None
        if acfg is not None:
            acfg.validate_programs(programs)
        bd = Breakdown()
        report = RunReport(makespan=0.0, breakdown=bd, total_cores=lay.total_cores)
        sim = Simulator(
            _PROGRESS,
            trace_hook=report.trace_events.append if self.trace else None,
            trace_fields=lambda k, d: trace_fields(k, d, router.pids),
            note_hook=report.hb_events.append if self.trace else None,
        )
        st = RunState()
        for prog in programs:
            st.add(prog)
        tracker = WorkloadTracker()
        slow = inj.slowdown if inj is not None else (lambda p, now: 1.0)
        san = InvariantSanitizer(router) if self.sanitize else None
        transport = Transport(
            sim, router, self.machine, lay, report,
            injector=inj, rcfg=rcfg if ft else None, sanitizer=san,
        )
        sched = Scheduler(
            sim, router, make_policy(self.mode), lay, st,
            self.cost, report, bd, slow, transport, tracker,
            sanitizer=san, adaptive=acfg,
        )
        # No injector: slowdown hook is 1.0; skip per-run calls/scalings.
        sched.unit_slow = inj is None
        rec = RecoveryManager(
            sim, router, transport, sched, rcfg, report, bd, st, slow, sanitizer=san
        ) if ft else None
        if ft and rcfg.watchdog_horizon > 0:
            sim.arm_watchdog(rcfg.watchdog_horizon, transport.stall_snapshot)
        return SimpleNamespace(
            router=router, plan=plan, rcfg=rcfg, inj=inj, ft=ft,
            bd=bd, report=report, sim=sim, st=st, tracker=tracker,
            slow=slow, san=san, transport=transport, sched=sched, rec=rec,
            cascaded=set(),  # procs whose crash was cascade-induced
            popped=0,  # events popped (the snapshot/kill coordinate)
            next_snap=persist.every if persist is not None else 0,
            persist=persist, resumed=False,
        )

    def _seed(self, ctx: SimpleNamespace) -> None:
        """Schedule the initial events: every program starts active."""
        for i in range(len(ctx.st.progs)):
            ctx.sched.enqueue(i)
        for p in range(self.layout.nprocs):
            ctx.sched.dispatch(p, 0.0)
        if ctx.plan is not None:
            for c in ctx.plan.crashes:
                ctx.sim.push(c.time, "crash", c.proc)
        if ctx.ft:
            ctx.rec.arm()

    # -- the master event loop (Alg. 1) --------------------------------------------

    def _drive(self, ctx: SimpleNamespace, deadline: float | None) -> None:
        if not ctx.ft and deadline is None and ctx.persist is None and not ctx.resumed:
            # Fault-free, unbudgeted, unsnapshotted fresh runs see
            # only the four data-plane kinds: take the batched lean
            # loop (crashes always arm recovery).
            ctx.report.events = clean_loop(
                ctx.sim, ctx.sched, ctx.transport, ctx.st, ctx.router,
                self.cost, ctx.slow, ctx.bd, unit=ctx.inj is None,
            )
            return
        general_loop(self, ctx, deadline)

    # -- durability (snapshot/restore/resume, see checkpoint module) ---------------

    def snapshot(self) -> dict:
        """The state dict of the currently-driving run (tests/tools);
        raises when no run is active."""
        ctx = getattr(self, "_ctx", None)
        if ctx is None:
            raise ReproError("no active run to snapshot")
        return assemble_state(self, ctx)

    def restore(
        self,
        programs: list[PatchProgram],
        patch_proc: np.ndarray,
        state: dict,
        persist=None,
    ) -> SimpleNamespace:
        """Compose a fresh runtime stack and load ``state`` into it
        (see :func:`repro.runtime.checkpoint.restore_into`); returns
        the loaded context, which :meth:`resume` drives to completion."""
        check_persist(self, persist)
        return restore_into(self, programs, patch_proc, state, persist)

    def resume(
        self,
        programs: list[PatchProgram],
        patch_proc: np.ndarray,
        state: dict,
        deadline: float | None = None,
        persist=None,
    ) -> RunReport:
        """Restore a snapshot and drive the run to completion.

        The continuation replays the exact event sequence, so report
        and flux are bitwise-identical to a never-interrupted run.
        """
        ctx = self.restore(programs, patch_proc, state, persist=persist)
        self._ctx = ctx
        try:
            self._drive(ctx, deadline)
        finally:
            self._ctx = None
        return self._finish(ctx)

    def _finish(self, ctx: SimpleNamespace) -> RunReport:
        """Post-run checks, termination negotiation, final accounting."""
        sim, st, report, bd = ctx.sim, ctx.st, ctx.report, ctx.bd
        verify_quiescent(st.pids, st.progs, st.state, ctx.tracker)
        if ctx.san is not None:
            ctx.san.check_final(dict(zip(st.pids, st.progs)))
            report.sanitizer_checks = ctx.san.checks
        makespan = sim.makespan
        if self.termination == "consensus":
            hops = MisraMarkerRing.all_idle_hops(
                ctx.router.nprocs - len(ctx.router.dead)
            )
            report.termination_hops = hops
            report.termination_time = hops * self.machine.latency_inter
            makespan += report.termination_time

        report.makespan = makespan
        report.peak_heap = sim.peak_heap
        report.event_counts = sim.event_counts()
        bd.finalize_idle(makespan, ctx.sched.cores())
        return report

"""Discrete-event-simulated data-driven runtime (Sec. IV).

Executes patch-programs with the exact semantics of the serial engine,
but on a simulated multicore cluster: each MPI process has a master
thread (stream routing, program dispatch, termination) and worker
threads (program execution), per Fig. 8.  Virtual time advances through
an event heap; masters and workers are serial resources; messages
between processes pay latency + size/bandwidth.

Because the *real* algorithm runs (real counters, queues, priorities,
streams), every schedule-level phenomenon of the paper - pipeline
fill-in, priority-induced idling, clustering's communication deferral,
dynamic load balance across workers - emerges rather than being
modeled.  Only the time axis is synthetic; see DESIGN.md's
substitution log.

Runtime modes (see :mod:`repro.runtime.cluster`):

* ``hybrid``   - JSweep: dedicated master core per process; streams are
  routed while workers compute.
* ``mpi_only`` - the manually-parallelized baselines: one rank per
  core; routing, unpacking and dispatch compete with computation on
  the same core, and there is no intra-process worker pool to absorb
  load imbalance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .._util import ReproError
from ..core.patch_program import PatchProgram, ProgramState
from ..core.stream import ProgramId, Stream
from ..core.termination import MisraMarkerRing
from .cluster import Machine, TIANHE2
from .costmodel import CostModel
from .metrics import Breakdown, RunReport

__all__ = ["DataDrivenRuntime"]


class _Resource:
    """A serial server (one core's timeline)."""

    __slots__ = ("free", "core")

    def __init__(self, core: tuple):
        self.free = 0.0
        self.core = core

    def book(self, now: float, duration: float) -> tuple[float, float]:
        start = max(now, self.free)
        end = start + duration
        self.free = end
        return start, end


class DataDrivenRuntime:
    """DES executor for patch-programs on a simulated cluster."""

    def __init__(
        self,
        total_cores: int,
        machine: Machine = TIANHE2,
        cost: CostModel | None = None,
        mode: str = "hybrid",
        termination: str = "workload",
    ):
        if termination not in ("workload", "consensus"):
            raise ReproError(f"unknown termination mode {termination!r}")
        self.machine = machine
        self.cost = cost if cost is not None else CostModel()
        self.layout = machine.layout(total_cores, mode)
        self.mode = mode
        self.termination = termination

    # -- public API ---------------------------------------------------------------

    def run(
        self,
        programs: list[PatchProgram],
        patch_proc: np.ndarray,
    ) -> RunReport:
        """Execute ``programs`` to global termination; returns the report.

        ``patch_proc[p]`` is the owning process of patch ``p`` and must
        be consistent with the layout's process count.
        """
        lay = self.layout
        nprocs = lay.nprocs
        if len(programs) == 0:
            raise ReproError("no programs to run")
        if int(np.max(patch_proc)) >= nprocs:
            raise ReproError(
                f"patch_proc references proc {int(np.max(patch_proc))} but the "
                f"layout has only {nprocs} processes"
            )

        # --- per-run state ---
        progs: dict[ProgramId, PatchProgram] = {}
        proc_of: dict[ProgramId, int] = {}
        state: dict[ProgramId, ProgramState] = {}
        inbox: dict[ProgramId, list[Stream]] = {}
        inited: set[ProgramId] = set()
        running: set[ProgramId] = set()
        queued: set[ProgramId] = set()
        for prog in programs:
            if prog.id in progs:
                raise ReproError(f"duplicate program {prog.id!r}")
            progs[prog.id] = prog
            proc_of[prog.id] = int(patch_proc[prog.id.patch])
            state[prog.id] = ProgramState.ACTIVE
            inbox[prog.id] = []

        masters = [_Resource(("m", p)) for p in range(nprocs)]
        workers: list[list[_Resource]] = []
        for p in range(nprocs):
            if self.mode == "mpi_only":
                # Master and the single worker share the core.
                workers.append([masters[p]])
                masters[p].core = ("w", p, 0)
            else:
                workers.append(
                    [_Resource(("w", p, w)) for w in range(lay.workers_per_proc)]
                )
        idle_workers: list[list[int]] = [
            list(range(len(workers[p])))[::-1] for p in range(nprocs)
        ]
        pq: list[list] = [[] for _ in range(nprocs)]

        bd = Breakdown()
        report = RunReport(makespan=0.0, breakdown=bd, total_cores=lay.total_cores)
        events: list = []
        seq = 0

        def push_event(t: float, kind: str, data) -> None:
            nonlocal seq
            seq += 1
            heapq.heappush(events, (t, seq, kind, data))

        def push_pq(pid: ProgramId) -> None:
            nonlocal seq
            if pid in queued or pid in running:
                return
            queued.add(pid)
            seq += 1
            heapq.heappush(
                pq[proc_of[pid]], (-progs[pid].priority(), seq, pid)
            )

        def try_dispatch(p: int, now: float) -> None:
            # Workers pull from the process's shared active queue
            # themselves (Fig. 8); the pop cost is charged to the
            # worker as part of the run (see run_start).  The master is
            # NOT on this path - it only routes streams - which is
            # precisely the design the paper credits for scalability.
            while idle_workers[p] and pq[p]:
                _, _, pid = heapq.heappop(pq[p])
                queued.discard(pid)
                if state[pid] is not ProgramState.ACTIVE or pid in running:
                    continue
                w = idle_workers[p].pop()
                running.add(pid)
                push_event(now, "run_start", (p, w, pid))

        def deliver(pid: ProgramId, s: Stream, now: float) -> None:
            inbox[pid].append(s)
            if state[pid] is ProgramState.INACTIVE:
                state[pid] = ProgramState.ACTIVE
            if pid not in running:
                push_pq(pid)
                try_dispatch(proc_of[pid], now)

        # --- seed: every program starts active ---
        for pid in progs:
            push_pq(pid)
        for p in range(nprocs):
            try_dispatch(p, 0.0)

        makespan = 0.0
        cm = self.cost
        mach = self.machine

        while events:
            now, _, kind, data = heapq.heappop(events)
            makespan = max(makespan, now)
            report.events += 1

            if kind == "run_start":
                p, w, pid = data
                prog = progs[pid]
                if pid not in inited:
                    prog.init()
                    inited.add(pid)
                box = inbox[pid]
                while box:
                    prog.input(box.pop(0))
                prog.compute()
                outputs: list[Stream] = []
                while (s := prog.output()) is not None:
                    outputs.append(s)
                counters = prog.last_run_counters()
                report.vertices_solved += counters.get("vertices", 0)
                remote = [
                    s for s in outputs if proc_of[s.dst] != p
                ]
                cost = cm.run_cost(
                    counters,
                    remote_streams=len(remote),
                    remote_items=sum(s.items for s in remote),
                )
                duration = sum(cost.values())
                duration += cm.t_sched  # queue pop / dispatch, on the worker
                wres = workers[p][w]
                _, end = wres.book(now, duration)
                bd.add(wres.core, "kernel", cost["kernel"])
                bd.add(wres.core, "graph_op", cost["graph_op"] + cost["fixed"])
                bd.add(wres.core, "pack", cost["pack"])
                bd.add(wres.core, "sched", cm.t_sched)
                report.executions += 1
                push_event(end, "run_end", (p, w, pid, outputs))

            elif kind == "run_end":
                p, w, pid, outputs = data
                prog = progs[pid]
                for s in outputs:
                    report.stream_items += s.items
                    dst_p = proc_of[s.dst]
                    if dst_p == p:
                        # Local routing through the master thread.
                        _, end = masters[p].book(now, cm.t_route)
                        bd.add(masters[p].core, "comm", cm.t_route)
                        report.local_streams += 1
                        push_event(end, "deliver", (s.dst, s))
                    else:
                        wire = mach.message_time(p, dst_p, s.nbytes, self.layout)
                        report.messages += 1
                        report.message_bytes += s.nbytes
                        push_event(now + wire, "msg_arrive", (dst_p, s))
                running.discard(pid)
                if prog.vote_to_halt() and not inbox[pid]:
                    state[pid] = ProgramState.INACTIVE
                else:
                    state[pid] = ProgramState.ACTIVE
                    push_pq(pid)
                idle_workers[p].append(w)
                try_dispatch(p, now)

            elif kind == "msg_arrive":
                p, s = data
                dur = cm.unpack_cost(1, s.items)
                _, end = masters[p].book(now, dur)
                bd.add(masters[p].core, "unpack", dur)
                push_event(end, "deliver", (s.dst, s))

            elif kind == "deliver":
                pid, s = data
                deliver(pid, s, now)

            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown event kind {kind!r}")

        # --- post-run checks and termination negotiation ---
        for pid, prog in progs.items():
            if state[pid] is not ProgramState.INACTIVE:
                raise ReproError(f"{pid!r} still active at quiescence")
            rem = prog.remaining_workload()
            if rem is not None and rem != 0:
                raise ReproError(f"{pid!r} finished with {rem} work remaining")

        if self.termination == "consensus":
            ring = MisraMarkerRing(nprocs)
            for p in range(nprocs):
                ring.on_idle(p)
            hops = ring.run_to_completion()
            report.termination_hops = hops
            report.termination_time = hops * mach.latency_inter
            makespan += report.termination_time

        report.makespan = makespan
        cores = sorted({r.core for p in range(nprocs) for r in workers[p]}
                       | {masters[p].core for p in range(nprocs)})
        bd.finalize_idle(makespan, list(cores))
        return report

"""Discrete-event-simulated data-driven runtime (Sec. IV): the
composition root over the layered simulator substrate.

Executes patch-programs with the exact semantics of the serial engine,
but on a simulated multicore cluster (master thread routing streams,
worker threads executing programs, per Fig. 8).  Because the *real*
algorithm runs, every schedule-level phenomenon of the paper emerges
rather than being modeled; only the time axis is synthetic (DESIGN.md).
The machinery lives in layers, composed here and each documented in
its own module: ``simulator`` (event heap, core timelines, virtual
clock, quiescence), ``router`` (route table, owner map), ``transport``
(wire times, reliable delivery, fault injection), ``scheduler``
(queues, worker pools, core-layout policies), ``recovery``
(checkpoints, crash failover), and ``fastloop`` (the batched
clean-run event loop).

:class:`DataDrivenRuntime` validates the run, wires the layers
together, drives the master event loop (Alg. 1), and negotiates
termination.  With ``trace=True`` every processed event is recorded on
``RunReport.trace_events`` (exportable via ``to_chrome_trace``).
"""

from __future__ import annotations

import numpy as np

from .._util import ReproError
from ..core.patch_program import PatchProgram, ProgramState
from ..core.termination import MisraMarkerRing, WorkloadTracker, verify_quiescent
from .cluster import Machine, TIANHE2
from .costmodel import CostModel
from .fastloop import clean_loop
from .faults import (
    AdaptiveConfig, FaultInjector, FaultPlan, RecoveryConfig, arm_recovery,
)
from .metrics import Breakdown, DeadlineExceeded, RunReport, trace_fields
from .recovery import RecoveryManager
from .router import Router
from .sanitizer import InvariantSanitizer
from .scheduler import RunState, Scheduler, make_policy
from .simulator import Simulator
from .transport import Transport

__all__ = ["DataDrivenRuntime", "DeadlineExceeded"]

#: Forward-progress event kinds (their outstanding count is the simulator's
#: quiescence detector).
_PROGRESS = frozenset(("run_start", "run_end", "msg_arrive", "deliver", "failover", "requeue"))


class DataDrivenRuntime:
    """DES executor for patch-programs on a simulated cluster."""

    def __init__(
        self,
        total_cores: int,
        machine: Machine = TIANHE2,
        cost: CostModel | None = None,
        mode: str = "hybrid",
        termination: str = "workload",
        faults: FaultPlan | None = None,
        recovery: RecoveryConfig | None = None,
        adaptive: AdaptiveConfig | None = None,
        trace: bool = False,
        sanitize: bool = False,
    ):
        if termination not in ("workload", "consensus"):
            raise ReproError(f"unknown termination mode {termination!r}")
        self.machine = machine
        self.cost = cost if cost is not None else CostModel()
        self.layout = machine.layout(total_cores, mode)
        self.mode = mode
        self.termination = termination
        self.faults = faults
        # Armed explicitly, by a lossy plan, or by an adaptive config.
        self.recovery = arm_recovery(faults, recovery, adaptive)
        self.trace = trace
        self.sanitize = sanitize  # live invariant checks (chaos harness)

    def run(
        self,
        programs: list[PatchProgram],
        patch_proc: np.ndarray,
        deadline: float | None = None,
    ) -> RunReport:
        """Execute ``programs`` to global termination; returns the report.

        ``patch_proc[p]`` is the owning process of patch ``p``;
        ``deadline`` is an optional virtual-time budget (the first
        event past it raises :class:`DeadlineExceeded`).
        """
        if deadline is not None and deadline <= 0:
            raise ReproError("run deadline must be positive")
        lay = self.layout
        router = Router(programs, patch_proc, lay.nprocs)
        plan, rcfg = self.faults, self.recovery
        if plan is not None:
            wd = rcfg.watchdog_horizon if rcfg is not None else None
            plan.validate(lay.nprocs, programs, horizon=wd)
        inj = FaultInjector(plan) if plan is not None else None
        ft = rcfg is not None  # ack/retry + checkpoint/failover machinery on
        acfg = rcfg.adaptive if ft else None
        if acfg is not None:
            acfg.validate_programs(programs)

        # -- compose the layers ----------------------------------------------------
        bd = Breakdown()
        report = RunReport(makespan=0.0, breakdown=bd, total_cores=lay.total_cores)
        sim = Simulator(
            _PROGRESS,
            trace_hook=report.trace_events.append if self.trace else None,
            trace_fields=lambda k, d: trace_fields(k, d, router.pids),
            note_hook=report.hb_events.append if self.trace else None,
        )
        st = RunState()
        for prog in programs:
            st.add(prog)
        tracker = WorkloadTracker()
        slow = inj.slowdown if inj is not None else (lambda p, now: 1.0)
        san = InvariantSanitizer(router) if self.sanitize else None
        transport = Transport(
            sim, router, self.machine, lay, report,
            injector=inj, rcfg=rcfg if ft else None, sanitizer=san,
        )
        sched = Scheduler(
            sim, router, make_policy(self.mode), lay, st,
            self.cost, report, bd, slow, transport, tracker,
            sanitizer=san, adaptive=acfg,
        )
        # No injector: slowdown hook is 1.0; skip per-run calls/scalings.
        sched.unit_slow = inj is None
        rec = RecoveryManager(
            sim, router, transport, sched, rcfg, report, bd, st, slow, sanitizer=san
        ) if ft else None
        if ft and rcfg.watchdog_horizon > 0:
            sim.arm_watchdog(rcfg.watchdog_horizon, transport.stall_snapshot)

        # -- seed: every program starts active -------------------------------------
        for i in range(len(st.progs)):
            sched.enqueue(i)
        for p in range(lay.nprocs):
            sched.dispatch(p, 0.0)
        cascaded: set[int] = set()  # procs whose crash was cascade-induced
        if plan is not None:
            for c in plan.crashes:
                sim.push(c.time, "crash", c.proc)
        if ft:
            rec.arm()

        # -- the master event loop (Alg. 1) ----------------------------------------
        cm = self.cost
        if not ft and deadline is None:
            # Fault-free, unbudgeted runs see only the four data-plane
            # kinds and never hit the staleness filters, retraction, or
            # control-plane dispatch below (crashes always arm
            # recovery): take the batched lean loop (fastloop module).
            report.events = clean_loop(
                sim, sched, transport, st, router, cm, slow, bd, unit=inj is None
            )
            return self._finish(sim, sched, st, router, tracker, san, report, bd)
        while sim:
            now, kind, data = sim.pop()

            if deadline is not None and now > deadline:
                # Events pop in time order: first past the budget ends the run.
                report.makespan = sim.makespan
                bd.finalize_idle(sim.makespan, sched.cores())
                raise DeadlineExceeded(deadline, now, report)

            # Control-plane events never advance the makespan.
            if kind in ("ack", "nack", "timer", "hedge"):
                getattr(transport, "on_" + kind)(data, now)
                continue

            # Staleness filtering (only faults ever trigger these).
            if kind in ("run_start", "run_end"):
                if sched.stale_run(data, now):
                    continue
            elif kind == "msg_arrive" and data[0] in router.dead:
                continue  # receiver is down; the sender will retry
            elif kind == "requeue":
                pid, ep = data
                if ep != st.epoch[st.index[pid]] or router.proc_of[pid] in router.dead:
                    continue
            elif kind in ("crash", "ckpt", "health") and (
                data in router.dead or rec.quiescent()
            ):
                continue  # double fault on one proc, or the job already done

            sim.observe(now)
            report.events += 1

            if kind == "run_start":
                sched.execute(data, now)
            elif kind == "run_end":
                sched.complete(data, now)
            elif kind == "msg_arrive":
                p, s, wid = data
                if not transport.receive(s, p, now, wid):
                    sim.retract_progress()  # nothing was delivered
                    continue
                dur = cm.unpack_cost(1, s.items) * slow(p, now)
                _, end = sched.masters[p].book(now, dur)
                bd.add(sched.masters[p].core, "unpack", dur)
                sim.push(end, "deliver", (s.dsti if s.dsti >= 0 else st.index[s.dst], s))
            elif kind == "deliver":
                i, s = data
                st.inbox[i].append(s)
                if ft:
                    rec.log_delivery(st.pids[i], s)
                if st.state[i] is ProgramState.INACTIVE:
                    st.state[i] = ProgramState.ACTIVE
                if i not in sched.running:
                    sched.enqueue(i)
                    sched.dispatch(router.proc_idx[i], now)
            elif kind == "crash":
                rec.on_crash(data, now)
                if data in cascaded:
                    report.cascade_crashes += 1
                if inj is not None:
                    # Correlated failure: seeded survivors follow suit.
                    alive = [q for q in range(lay.nprocs)
                             if q not in router.dead]
                    for q, t_q in inj.cascade_after(data, alive, now):
                        cascaded.add(q)
                        sim.push(t_q, "crash", q)
            elif kind == "failover":
                rec.on_failover(data, now)
            elif kind == "requeue":
                i = st.index[data[0]]
                sched.enqueue(i)
                sched.dispatch(router.proc_idx[i], now)
            elif kind == "ckpt":
                rec.on_ckpt(data, now)
            elif kind == "health":
                rec.on_health(now)
            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown event kind {kind!r}")

        return self._finish(sim, sched, st, router, tracker, san, report, bd)

    def _finish(self, sim, sched, st, router, tracker, san, report, bd) -> RunReport:
        """Post-run checks, termination negotiation, final accounting."""
        verify_quiescent(st.pids, st.progs, st.state, tracker)
        if san is not None:
            san.check_final(dict(zip(st.pids, st.progs)))
            report.sanitizer_checks = san.checks
        makespan = sim.makespan
        if self.termination == "consensus":
            hops = MisraMarkerRing.all_idle_hops(router.nprocs - len(router.dead))
            report.termination_hops = hops
            report.termination_time = hops * self.machine.latency_inter
            makespan += report.termination_time

        report.makespan = makespan
        report.peak_heap = sim.peak_heap
        report.event_counts = sim.event_counts()
        bd.finalize_idle(makespan, sched.cores())
        return report

"""Discrete-event-simulated data-driven runtime (Sec. IV).

Executes patch-programs with the exact semantics of the serial engine,
but on a simulated multicore cluster: each MPI process has a master
thread (stream routing, program dispatch, termination) and worker
threads (program execution), per Fig. 8.  Virtual time advances through
an event heap; masters and workers are serial resources; messages
between processes pay latency + size/bandwidth.

Because the *real* algorithm runs (real counters, queues, priorities,
streams), every schedule-level phenomenon of the paper - pipeline
fill-in, priority-induced idling, clustering's communication deferral,
dynamic load balance across workers - emerges rather than being
modeled.  Only the time axis is synthetic; see DESIGN.md's
substitution log.

Runtime modes (see :mod:`repro.runtime.cluster`):

* ``hybrid``   - JSweep: dedicated master core per process; streams are
  routed while workers compute.
* ``mpi_only`` - the manually-parallelized baselines: one rank per
  core; routing, unpacking and dispatch compete with computation on
  the same core, and there is no intra-process worker pool to absorb
  load imbalance.

Fault tolerance (see :mod:`repro.runtime.faults`): given a
:class:`~repro.runtime.faults.FaultPlan`, the runtime injects process
crashes, straggler windows and message drop/duplication, and recovers
exactly:

* every remote stream is stamped with a unique ``(src, seq)`` id,
  acknowledged on arrival, and retransmitted with exponential backoff
  until acked; receivers discard duplicate ids, so drops, duplicates
  and retries are invisible to programs;
* each process periodically snapshots its resident programs (local
  context + unconsumed inbox + un-acked sends) and logs deliveries
  since the snapshot; snapshots are incremental - a program untouched
  since its last snapshot is skipped, so checkpoint cost follows
  activity rather than residency;
* on a crash, the dead process's patches are re-assigned round-robin
  to survivors through the route table; each migrated program is
  restored from its snapshot, its delivery log is replayed into its
  inbox, its un-acked checkpointed sends are retransmitted, and its
  execution epoch is bumped so events and workload commits of the lost
  execution are recognized as stale.

Replay may re-batch a program's emissions differently than the lost
execution, so exact recovery additionally requires *idempotent* input
(programs built with ``resilient_input``; sweep programs dedupe on
remote-edge ids).  Since sweep kernels write each cell by assignment
from fixed upwind values, re-executed vertices recompute bit-identical
results: a recovered run matches the fault-free numerics exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .._util import ReproError
from ..core.patch_program import PatchProgram, ProgramState
from ..core.stream import ProgramId, Stream
from ..core.termination import MisraMarkerRing, WorkloadTracker
from .cluster import Machine, TIANHE2
from .costmodel import CostModel
from .faults import FaultInjector, FaultPlan, RecoveryConfig
from .metrics import Breakdown, RunReport

__all__ = ["DataDrivenRuntime"]

#: Event kinds that represent actual forward progress of the run.  The
#: runtime tracks how many are outstanding to recognize quiescence
#: (crash/checkpoint events scheduled after the job finished are inert,
#: and checkpointing stops rescheduling itself).
_PROGRESS = frozenset(
    ("run_start", "run_end", "msg_arrive", "deliver", "failover", "requeue")
)


class _Resource:
    """A serial server (one core's timeline)."""

    __slots__ = ("free", "core")

    def __init__(self, core: tuple):
        self.free = 0.0
        self.core = core

    def book(self, now: float, duration: float) -> tuple[float, float]:
        start = max(now, self.free)
        end = start + duration
        self.free = end
        return start, end


@dataclass
class _Checkpoint:
    """One program's recovery point."""

    state: object  # PatchProgram.checkpoint() snapshot
    inbox: list  # streams delivered but unconsumed at snapshot time
    pending: dict  # uid -> Stream: this program's un-acked sends


class _PendingSend:
    """Ack/retransmit bookkeeping of one un-acked remote stream."""

    __slots__ = ("stream", "src_pid", "retries", "timeout", "attempt")

    def __init__(self, stream: Stream, src_pid: ProgramId, timeout: float):
        self.stream = stream
        self.src_pid = src_pid
        self.retries = 0
        self.timeout = timeout
        self.attempt = 0  # bumped on every (re)arm; lazily cancels timers


class DataDrivenRuntime:
    """DES executor for patch-programs on a simulated cluster."""

    def __init__(
        self,
        total_cores: int,
        machine: Machine = TIANHE2,
        cost: CostModel | None = None,
        mode: str = "hybrid",
        termination: str = "workload",
        faults: FaultPlan | None = None,
        recovery: RecoveryConfig | None = None,
    ):
        if termination not in ("workload", "consensus"):
            raise ReproError(f"unknown termination mode {termination!r}")
        self.machine = machine
        self.cost = cost if cost is not None else CostModel()
        self.layout = machine.layout(total_cores, mode)
        self.mode = mode
        self.termination = termination
        self.faults = faults
        # Recovery machinery is armed explicitly or whenever the plan
        # can lose work; a straggler-only plan needs none.
        if recovery is None and faults is not None and faults.needs_recovery():
            recovery = RecoveryConfig()
        self.recovery = recovery

    # -- public API ---------------------------------------------------------------

    def run(
        self,
        programs: list[PatchProgram],
        patch_proc: np.ndarray,
    ) -> RunReport:
        """Execute ``programs`` to global termination; returns the report.

        ``patch_proc[p]`` is the owning process of patch ``p`` and must
        be consistent with the layout's process count and with the
        patches the programs reference.
        """
        lay = self.layout
        nprocs = lay.nprocs
        if len(programs) == 0:
            raise ReproError("no programs to run")
        patch_proc = np.asarray(patch_proc)
        if patch_proc.ndim != 1:
            raise ReproError("patch_proc must be a one-dimensional array")
        if patch_proc.size == 0:
            raise ReproError("patch_proc is empty")
        if int(patch_proc.min()) < 0:
            raise ReproError(
                f"patch_proc contains negative process id {int(patch_proc.min())}"
            )
        if int(patch_proc.max()) >= nprocs:
            raise ReproError(
                f"patch_proc references proc {int(np.max(patch_proc))} but the "
                f"layout has only {nprocs} processes"
            )
        for prog in programs:
            if not 0 <= prog.id.patch < patch_proc.size:
                raise ReproError(
                    f"program {prog.id!r} references a patch outside "
                    f"patch_proc (length {patch_proc.size})"
                )

        plan = self.faults
        rcfg = self.recovery
        ft = rcfg is not None  # ack/retry + checkpoint/failover machinery on
        inj = FaultInjector(plan) if plan is not None else None
        if plan is not None:
            for w in plan.stragglers:
                if w.proc >= nprocs:
                    raise ReproError(
                        f"straggler window targets proc {w.proc} but the "
                        f"layout has only {nprocs} processes"
                    )
            if plan.crashes:
                crashed = plan.crashed_procs()
                if any(c >= nprocs for c in crashed):
                    raise ReproError(
                        f"crash targets proc {max(crashed)} but the layout "
                        f"has only {nprocs} processes"
                    )
                if len(crashed) >= nprocs:
                    raise ReproError(
                        "fault plan crashes every process; no survivors"
                    )
                for prog in programs:
                    if not getattr(prog, "resilient_input", False):
                        raise ReproError(
                            "crash recovery requires idempotent programs: "
                            f"{prog.id!r} does not set resilient_input "
                            "(build sweep programs with resilient=True)"
                        )

        # --- per-run state ---
        progs: dict[ProgramId, PatchProgram] = {}
        proc_of: dict[ProgramId, int] = {}  # the route table
        state: dict[ProgramId, ProgramState] = {}
        inbox: dict[ProgramId, list[Stream]] = {}
        inited: set[ProgramId] = set()
        running: set[ProgramId] = set()
        queued: set[ProgramId] = set()
        epoch: dict[ProgramId, int] = {}  # execution epoch (bumped on failover)
        for prog in programs:
            if prog.id in progs:
                raise ReproError(f"duplicate program {prog.id!r}")
            progs[prog.id] = prog
            proc_of[prog.id] = int(patch_proc[prog.id.patch])
            state[prog.id] = ProgramState.ACTIVE
            inbox[prog.id] = []
            epoch[prog.id] = 0

        # --- fault-tolerance state ---
        patch_owner = patch_proc.astype(np.int64).copy()  # mutable route table
        owned: dict[int, list[ProgramId]] = {p: [] for p in range(nprocs)}
        for pid, p in proc_of.items():
            owned[p].append(pid)
        ckpt: dict[ProgramId, _Checkpoint | None] = {pid: None for pid in progs}
        dlog: dict[ProgramId, list[Stream]] = {pid: [] for pid in progs}
        dirty: set[ProgramId] = set()  # changed since last snapshot
        out_seq: dict[ProgramId, int] = {}  # next seq per sending program
        pending: dict[tuple, _PendingSend] = {}  # uid -> un-acked send
        seen: set[tuple] = set()  # uids already delivered (dup discard)
        tracker = WorkloadTracker()
        dead: set[int] = set()
        crash_time: dict[int, float] = {}

        masters = [_Resource(("m", p)) for p in range(nprocs)]
        workers: list[list[_Resource]] = []
        for p in range(nprocs):
            if self.mode == "mpi_only":
                # Master and the single worker share the core.
                workers.append([masters[p]])
                masters[p].core = ("w", p, 0)
            else:
                workers.append(
                    [_Resource(("w", p, w)) for w in range(lay.workers_per_proc)]
                )
        idle_workers: list[list[int]] = [
            list(range(len(workers[p])))[::-1] for p in range(nprocs)
        ]
        pq: list[list] = [[] for _ in range(nprocs)]

        bd = Breakdown()
        report = RunReport(makespan=0.0, breakdown=bd, total_cores=lay.total_cores)
        events: list = []
        seq = 0
        live = 0  # outstanding progress events (quiescence detector)

        def push_event(t: float, kind: str, data) -> None:
            nonlocal seq, live
            seq += 1
            if kind in _PROGRESS:
                live += 1
            heapq.heappush(events, (t, seq, kind, data))

        def push_pq(pid: ProgramId) -> None:
            nonlocal seq
            if pid in queued or pid in running:
                return
            queued.add(pid)
            seq += 1
            heapq.heappush(
                pq[proc_of[pid]], (-progs[pid].priority(), seq, pid)
            )

        def slow(p: int, now: float) -> float:
            return inj.slowdown(p, now) if inj is not None else 1.0

        def try_dispatch(p: int, now: float) -> None:
            # Workers pull from the process's shared active queue
            # themselves (Fig. 8); the pop cost is charged to the
            # worker as part of the run (see run_start).  The master is
            # NOT on this path - it only routes streams - which is
            # precisely the design the paper credits for scalability.
            if p in dead:
                return
            while idle_workers[p] and pq[p]:
                _, _, pid = heapq.heappop(pq[p])
                if proc_of[pid] != p:
                    continue  # stale entry: the program migrated away
                queued.discard(pid)
                if state[pid] is not ProgramState.ACTIVE or pid in running:
                    continue
                w = idle_workers[p].pop()
                running.add(pid)
                push_event(now, "run_start", (p, w, pid, epoch[pid]))

        def deliver(pid: ProgramId, s: Stream, now: float) -> None:
            inbox[pid].append(s)
            if ft:
                # Delivery log: replayed into the inbox if the owner
                # crashes and the program restarts from its snapshot.
                dlog[pid].append(s)
                dirty.add(pid)
            if state[pid] is ProgramState.INACTIVE:
                state[pid] = ProgramState.ACTIVE
            if pid not in running:
                push_pq(pid)
                try_dispatch(proc_of[pid], now)

        def transmit(ps: _PendingSend, now: float) -> None:
            """Put one (re)transmission of an un-acked stream on the wire."""
            s = ps.stream
            src_p = proc_of[s.src]
            dst_p = proc_of[s.dst]
            wire = mach.message_time(src_p, dst_p, s.nbytes, lay)
            fate = inj.message_fate() if inj is not None else "deliver"
            if fate == "drop":
                report.drops += 1
                return
            push_event(now + wire, "msg_arrive", (dst_p, s))
            if fate == "duplicate":
                report.duplicates += 1
                push_event(now + 2 * wire, "msg_arrive", (dst_p, s))

        # --- seed: every program starts active ---
        for pid in progs:
            push_pq(pid)
        for p in range(nprocs):
            try_dispatch(p, 0.0)
        if plan is not None:
            for c in plan.crashes:
                push_event(c.time, "crash", c.proc)
        if ft:
            for p in range(nprocs):
                push_event(rcfg.checkpoint_interval, "ckpt", p)

        makespan = 0.0
        cm = self.cost
        mach = self.machine

        while events:
            now, _, kind, data = heapq.heappop(events)
            if kind in _PROGRESS:
                live -= 1

            # -- control-plane events: never advance the makespan --------
            if kind == "ack":
                pending.pop(data, None)
                continue

            if kind == "timer":
                uid, attempt = data
                ps = pending.get(uid)
                if ps is None or ps.attempt != attempt:
                    continue  # acked or superseded: lazily cancelled
                report.timeouts += 1
                s = ps.stream
                if proc_of[s.src] in dead:
                    continue  # sender's owner crashed; failover re-arms
                if proc_of[s.dst] in dead:
                    # Destination is down: hold the message (without
                    # burning retries) until failover re-routes it.
                    ps.attempt += 1
                    push_event(now + ps.timeout, "timer", (uid, ps.attempt))
                    continue
                if ps.retries >= rcfg.max_retries:
                    raise ReproError(
                        f"message {uid!r} undeliverable after "
                        f"{rcfg.max_retries} retries"
                    )
                ps.retries += 1
                ps.attempt += 1
                report.retries += 1
                transmit(ps, now)
                ps.timeout *= rcfg.backoff
                push_event(now + ps.timeout, "timer", (uid, ps.attempt))
                continue

            # -- staleness filtering (only faults ever trigger these) ----
            if kind in ("run_start", "run_end"):
                p, w, pid, ep = data[0], data[1], data[2], data[-1]
                if p in dead:
                    continue  # executed on a crashed process: lost
                if ep != epoch[pid]:
                    # Superseded execution on a live process (defensive;
                    # reachable only through failover races): free the
                    # worker, drop the run.
                    idle_workers[p].append(w)
                    try_dispatch(p, now)
                    continue
            elif kind == "msg_arrive":
                if data[0] in dead:
                    continue  # receiver is down; the sender will retry
            elif kind == "requeue":
                pid, ep = data
                if ep != epoch[pid] or proc_of[pid] in dead:
                    continue
            elif kind == "crash":
                if data in dead or (live == 0 and not pending):
                    continue  # double fault on one proc / job already done
            elif kind == "ckpt":
                if data in dead or (live == 0 and not pending):
                    continue  # checkpointing stops once the job is done

            makespan = max(makespan, now)
            report.events += 1

            if kind == "run_start":
                p, w, pid, ep = data
                prog = progs[pid]
                sf = slow(p, now)
                if ep > 0:
                    report.reexecutions += 1
                if pid not in inited:
                    prog.init()
                    inited.add(pid)
                box = inbox[pid]
                if box:
                    for s in box:
                        prog.input(s)
                    box.clear()
                prog.compute()
                outputs: list[Stream] = []
                while (s := prog.output()) is not None:
                    outputs.append(s)
                counters = prog.last_run_counters()
                report.vertices_solved += counters.get("vertices", 0)
                remote = [
                    s for s in outputs if proc_of[s.dst] != p
                ]
                cost = cm.run_cost(
                    counters,
                    remote_streams=len(remote),
                    remote_items=sum(s.items for s in remote),
                )
                duration = sum(cost.values())
                duration += cm.t_sched  # queue pop / dispatch, on the worker
                wres = workers[p][w]
                _, end = wres.book(now, duration * sf)
                bd.add(wres.core, "kernel", cost["kernel"] * sf)
                bd.add(wres.core, "graph_op", (cost["graph_op"] + cost["fixed"]) * sf)
                bd.add(wres.core, "pack", cost["pack"] * sf)
                bd.add(wres.core, "sched", cm.t_sched * sf)
                report.executions += 1
                push_event(end, "run_end", (p, w, pid, outputs, ep))

            elif kind == "run_end":
                p, w, pid, outputs, ep = data
                prog = progs[pid]
                for s in outputs:
                    report.stream_items += s.items
                    dst_p = proc_of[s.dst]
                    if dst_p == p:
                        # Local routing through the master thread.
                        dur = cm.t_route * slow(p, now)
                        _, end = masters[p].book(now, dur)
                        bd.add(masters[p].core, "comm", dur)
                        report.local_streams += 1
                        push_event(end, "deliver", (s.dst, s))
                    else:
                        report.messages += 1
                        report.message_bytes += s.nbytes
                        if ft:
                            # Stamp a unique message id and track the
                            # send until the receiver acknowledges it.
                            s.seq = out_seq.get(s.src, 0)
                            out_seq[s.src] = s.seq + 1
                            s.epoch = ep
                            ps = _PendingSend(s, pid, rcfg.ack_timeout)
                            pending[s.uid] = ps
                            transmit(ps, now)
                            push_event(now + ps.timeout, "timer", (s.uid, 0))
                        else:
                            wire = mach.message_time(p, dst_p, s.nbytes, lay)
                            push_event(now + wire, "msg_arrive", (dst_p, s))
                running.discard(pid)
                if ft:
                    dirty.add(pid)
                rem = prog.remaining_workload()
                if rem is not None:
                    # Workload-commit fast path; epoch-keyed so a stale
                    # execution cannot overwrite a migrated program's
                    # fresher commit.
                    tracker.commit(pid, rem, epoch=ep)
                if prog.vote_to_halt() and not inbox[pid]:
                    state[pid] = ProgramState.INACTIVE
                else:
                    state[pid] = ProgramState.ACTIVE
                    push_pq(pid)
                idle_workers[p].append(w)
                try_dispatch(p, now)

            elif kind == "msg_arrive":
                p, s = data
                uid = s.uid
                if uid is not None:
                    # Ack on arrival (cheap control message to the
                    # sender's current owner), then discard duplicates:
                    # retransmissions and injected copies re-ack but are
                    # invisible to the program.
                    if inj is None or not inj.ack_dropped():
                        ack_t = mach.control_time(p, proc_of[s.src], lay)
                        push_event(now + ack_t, "ack", uid)
                    if uid in seen:
                        continue
                    seen.add(uid)
                dur = cm.unpack_cost(1, s.items) * slow(p, now)
                _, end = masters[p].book(now, dur)
                bd.add(masters[p].core, "unpack", dur)
                push_event(end, "deliver", (s.dst, s))

            elif kind == "deliver":
                pid, s = data
                deliver(pid, s, now)

            elif kind == "crash":
                proc = data
                dead.add(proc)
                report.crashes += 1
                crash_time[proc] = now
                if len(dead) >= nprocs:
                    raise ReproError("all processes crashed; no survivors")
                # Workers of the dead process stop mid-run (their
                # run_end events are now stale); detection is modeled
                # as a fixed delay before survivors take over.
                push_event(now + rcfg.detection_delay, "failover", proc)

            elif kind == "failover":
                proc = data
                alive = [q for q in range(nprocs) if q not in dead]
                moved = sorted(owned[proc])
                owned[proc] = []
                moved_set = set(moved)
                # Re-assign the dead owner's patches round-robin over
                # the survivors, through the route table.
                for i, patch in enumerate(sorted({pid.patch for pid in moved})):
                    patch_owner[patch] = alive[i % len(alive)]
                install_end = now
                for pid in moved:
                    new_p = int(patch_owner[pid.patch])
                    proc_of[pid] = new_p
                    owned[new_p].append(pid)
                    epoch[pid] += 1
                    running.discard(pid)
                    queued.discard(pid)
                    prog = progs[pid]
                    ck = ckpt[pid]
                    if ck is None:
                        prog.init()  # never checkpointed: restart fresh
                    else:
                        prog.restore(ck.state)
                    inited.add(pid)
                    # Replay: checkpointed unconsumed inbox + everything
                    # delivered since the snapshot.  The log is NOT
                    # cleared - it belongs to the snapshot, and this
                    # formula must stay valid for a second failover.
                    base = list(ck.inbox) if ck is not None else []
                    inbox[pid] = base + list(dlog[pid])
                    state[pid] = ProgramState.ACTIVE
                    dur = rcfg.t_failover_program * slow(new_p, now)
                    _, end = masters[new_p].book(now, dur)
                    bd.add(masters[new_p].core, "recovery", dur)
                    push_event(end, "requeue", (pid, epoch[pid]))
                    install_end = max(install_end, end)
                # Un-acked sends of the migrated programs: snapshot-time
                # sends are retransmitted verbatim (same uid, so a late
                # original copy is discarded by the receiver); sends
                # made after the snapshot are dropped - the replayed
                # execution regenerates them under fresh uids, and
                # receivers dedupe their content at edge granularity.
                for uid in list(pending):
                    ps = pending[uid]
                    if ps.src_pid not in moved_set:
                        continue
                    ck = ckpt[ps.src_pid]
                    if ck is None or uid not in ck.pending:
                        del pending[uid]
                    else:
                        ps.retries = 0
                        ps.timeout = rcfg.ack_timeout
                        ps.attempt += 1
                        transmit(ps, now)
                        push_event(now + ps.timeout, "timer", (uid, ps.attempt))
                report.failover_time += install_end - crash_time[proc]

            elif kind == "requeue":
                pid, ep = data
                push_pq(pid)
                try_dispatch(proc_of[pid], now)

            elif kind == "ckpt":
                p = data
                # Incremental: only snapshot programs that ran or
                # received streams since their last snapshot - a quiet
                # program's existing recovery point is still exact, so
                # checkpoint cost tracks activity, not residency.
                own = [
                    pid for pid in owned[p]
                    if pid in dirty and pid not in running and pid in inited
                ]
                if own:
                    dur = (
                        rcfg.t_checkpoint_fixed
                        + len(own) * rcfg.t_checkpoint_program
                    ) * slow(p, now)
                    _, end = masters[p].book(now, dur)
                    bd.add(masters[p].core, "recovery", dur)
                    makespan = max(makespan, end)
                    for pid in own:
                        ck_pend = {
                            uid: ps.stream
                            for uid, ps in pending.items()
                            if ps.src_pid == pid
                        }
                        ckpt[pid] = _Checkpoint(
                            progs[pid].checkpoint(), list(inbox[pid]), ck_pend
                        )
                        dlog[pid] = []
                        dirty.discard(pid)
                        report.checkpoints += 1
                push_event(now + rcfg.checkpoint_interval, "ckpt", p)

            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown event kind {kind!r}")

        # --- post-run checks and termination negotiation ---
        for pid, prog in progs.items():
            if state[pid] is not ProgramState.INACTIVE:
                raise ReproError(f"{pid!r} still active at quiescence")
            rem = prog.remaining_workload()
            if rem is not None and rem != 0:
                raise ReproError(f"{pid!r} finished with {rem} work remaining")
        if not tracker.is_done():
            raise ReproError(
                f"workload tracker not drained: {tracker.pending_keys()!r}"
            )

        if self.termination == "consensus":
            alive_n = nprocs - len(dead)
            ring = MisraMarkerRing(alive_n)
            for p in range(alive_n):
                ring.on_idle(p)
            hops = ring.run_to_completion()
            report.termination_hops = hops
            report.termination_time = hops * mach.latency_inter
            makespan += report.termination_time

        report.makespan = makespan
        cores = sorted({r.core for p in range(nprocs) for r in workers[p]}
                       | {masters[p].core for p in range(nprocs)})
        bd.finalize_idle(makespan, list(cores))
        return report

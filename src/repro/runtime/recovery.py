"""Checkpointing, delivery logs and failover orchestration (S20).

The top resilience layer of the runtime stack.  Each process
periodically snapshots its resident programs (local context +
unconsumed inbox + un-acked sends); snapshots are *incremental* - a
program untouched since its last snapshot is skipped, so checkpoint
cost follows activity rather than residency.  A delivery log records
streams delivered after a program's snapshot; it is the snapshot's
replay suffix and is only cleared when a fresh snapshot supersedes it.

On a crash, the dead process's patches are re-assigned to survivors
through the router; each migrated program is restored from its
snapshot, its delivery log replayed into its inbox, its checkpointed
un-acked sends retransmitted verbatim through the transport, and its
execution epoch bumped so events and workload commits of the lost
execution are recognized as stale.

Replay may re-batch a program's emissions differently than the lost
execution, so exact recovery additionally requires *idempotent* input
(programs built with ``resilient_input``; sweep programs dedupe on
remote-edge ids).  Since sweep kernels write each cell by assignment
from fixed upwind values, re-executed vertices recompute bit-identical
results: a recovered run matches the fault-free numerics exactly.

Degraded-mode demotion (opt-in via :class:`~repro.runtime.faults.
AdaptiveConfig.demotion`) reuses the same migration machinery without
declaring a crash: a periodic health probe compares each live owning
process's observed-slowdown EWMA (fed by the scheduler) against the
median of its peers; a process exceeding ``demotion_factor`` times the
median for ``demotion_patience`` consecutive probes is demoted - its
patches migrate to healthy survivors through the identical
checkpoint-restore + delivery-log-replay + send-re-arm path, while the
process itself stays alive to ack, forward in-flight streams, and
serve as a target of last resort.

Elastic membership (opt-in via :class:`~repro.runtime.faults.
MembershipConfig`; DESIGN.md §14) replaces the ``detection_delay``
oracle with virtual-time heartbeat failure detection: every heartbeat
interval the recovery layer probes each live process on the control
plane and sweeps for silence; a process unheard-from past its adaptive
suspicion timeout (a per-process Jacobson/Karn
:class:`~repro.runtime.transport.RttEstimator` over probe reply times)
is *suspected* - fenced behind a bumped incarnation and drained
through the failover path.  A truly dead suspect fails over; a
falsely-suspected straggler keeps replying, rejoins after a healthy
probe streak, and pulls patches back under a bounded rebalance budget.
Planned restarts (``CrashFault.restart_after``) announce a new
incarnation and catch up via snapshot state transfer + delivery-log
anti-entropy before rebalancing.  Demoted processes re-promote through
the same healthy-probe streak.

Sits above every other runtime layer: it drives the router's owner
re-assignment, the transport's send re-arming, and the scheduler's
queue/run bookkeeping, and books its virtual costs on the master
timelines under the ``recovery`` breakdown category.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .._util import ReproError
from ..core.patch_program import ProgramState
from ..core.stream import ProgramId, Stream
from .faults import RecoveryConfig
from .metrics import Breakdown, RunReport
from .router import Router
from .scheduler import RunState, Scheduler
from .simulator import Simulator
from .transport import RttEstimator, Transport

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .sanitizer import InvariantSanitizer

__all__ = ["Checkpoint", "RecoveryManager"]


@dataclass
class Checkpoint:
    """One program's recovery point."""

    state: object  # PatchProgram.checkpoint() snapshot
    inbox: list  # streams delivered but unconsumed at snapshot time
    pending: dict  # uid -> Stream: this program's un-acked sends


class RecoveryManager:
    """Incremental checkpoints + crash failover over the lower layers."""

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        transport: Transport,
        scheduler: Scheduler,
        rcfg: RecoveryConfig,
        report: RunReport,
        bd: Breakdown,
        st: RunState,
        slow: Callable[[int, float], float],
        sanitizer: InvariantSanitizer | None = None,
    ) -> None:
        self.sim = sim
        self.router = router
        self.transport = transport
        self.scheduler = scheduler
        self.rcfg = rcfg
        self.report = report
        self.bd = bd
        self.st = st
        self.slow = slow
        self.san = sanitizer
        self.ckpt: dict[ProgramId, Checkpoint | None] = {
            pid: None for pid in st.pids
        }
        self.dlog: dict[ProgramId, list[Stream]] = {pid: [] for pid in st.pids}
        self.dirty: set[ProgramId] = set()  # changed since last snapshot
        self.crash_time: dict[int, float] = {}
        self._strikes: dict[int, int] = {}  # proc -> consecutive flags
        # Elastic membership state (DESIGN.md §14; all inert when off).
        m = rcfg.membership
        self.mcfg = m if m is not None and m.enabled else None
        self._last_heard: dict[int, float] = {
            p: 0.0 for p in range(router.nprocs)
        }
        self._hb_rtt: dict[int, RttEstimator] = {}  # probe-reply estimators
        self._suspected: set[int] = set()  # currently-suspected procs
        self._probes: dict[int, int] = {}  # healthy-probe streaks
        self._undetected: set[int] = set()  # crashed, suspicion not yet fired
        self._pending_restart = 0  # restart events in flight
        if self.mcfg is not None:
            # Rejoin replays migrated programs from checkpoints, so
            # (exactly like crash failover) it needs idempotent input
            # handling on every program.
            for prog in st.progs:
                if not getattr(prog, "resilient_input", False):
                    raise ReproError(
                        "elastic membership replays streams from "
                        "checkpoints and requires resilient programs "
                        "(build the solver with resilient=True)"
                    )
        scheduler.recovery = self  # completed runs mark themselves dirty

    def arm(self) -> None:
        """Schedule the first per-process checkpoint round (and the
        health probe, when degraded-mode demotion is on; and the first
        heartbeat tick, when elastic membership is on)."""
        for p in range(self.router.nprocs):
            self.sim.push(self.rcfg.checkpoint_interval, "ckpt", p)
        a = self.rcfg.adaptive
        if a is not None and a.demotion:
            self.sim.push(a.demotion_interval, "health", None)
        if self.mcfg is not None:
            self.sim.push(self.mcfg.heartbeat_interval, "hbeat", None)

    # -- bookkeeping hooks ---------------------------------------------------------

    def mark_dirty(self, pid: ProgramId) -> None:
        self.dirty.add(pid)

    def log_delivery(self, pid: ProgramId, s: Stream) -> None:
        """Record a delivery for replay if the owner crashes later."""
        self.dlog[pid].append(s)
        self.dirty.add(pid)

    def quiescent(self) -> bool:
        """True once the job is done: no outstanding progress events
        and no un-acked sends (crash/checkpoint events are then inert)."""
        return self.sim.live == 0 and not self.transport.pending

    # -- durability (snapshot/restore) ---------------------------------------------

    def state_dict(self) -> dict:
        """Codec-ready recovery state.

        Checkpoints flatten to plain dicts (a ``pending`` dict's
        insertion order is the retransmit order and round-trips
        verbatim); delivery logs keep their append order; the
        membership-only ``dirty`` set is sorted.
        """
        return {
            "ckpt": {
                pid: (
                    None if ck is None else {
                        "state": ck.state,
                        "inbox": list(ck.inbox),
                        "pending": dict(ck.pending),
                    }
                )
                for pid, ck in self.ckpt.items()
            },
            "dlog": {pid: list(v) for pid, v in self.dlog.items()},
            "dirty": sorted(self.dirty),
            "crash_time": dict(self.crash_time),
            "strikes": dict(self._strikes),
            "last_heard": dict(self._last_heard),
            "hb_rtt": {
                p: (e.srtt, e.rttvar, e.samples)
                for p, e in self._hb_rtt.items()
            },
            "suspected": sorted(self._suspected),
            "probes": dict(self._probes),
            "undetected": sorted(self._undetected),
            "pending_restart": self._pending_restart,
        }

    def load_state_dict(self, d: dict) -> None:
        self.ckpt = {
            pid: (
                None if ck is None
                else Checkpoint(ck["state"], list(ck["inbox"]), dict(ck["pending"]))
            )
            for pid, ck in d["ckpt"].items()
        }
        self.dlog = {pid: list(v) for pid, v in d["dlog"].items()}
        self.dirty = set(d["dirty"])
        self.crash_time = {int(p): float(t) for p, t in d["crash_time"].items()}
        self._strikes = {int(p): int(n) for p, n in d["strikes"].items()}
        self._last_heard = {
            int(p): float(t) for p, t in d.get("last_heard", {}).items()
        } or {p: 0.0 for p in range(self.router.nprocs)}
        hb_rtt: dict[int, RttEstimator] = {}
        for p, (srtt, rttvar, samples) in d.get("hb_rtt", {}).items():
            est = RttEstimator()
            est.srtt = srtt
            est.rttvar = rttvar
            est.samples = samples
            hb_rtt[int(p)] = est
        self._hb_rtt = hb_rtt
        self._suspected = set(d.get("suspected", ()))
        self._probes = {int(p): int(n) for p, n in d.get("probes", {}).items()}
        self._undetected = set(d.get("undetected", ()))
        self._pending_restart = int(d.get("pending_restart", 0))

    # -- event handlers ------------------------------------------------------------

    def on_crash(self, proc: int, now: float) -> None:
        self.sim.note(now, "hb_crash", (proc,))
        self.router.mark_dead(proc)
        self.report.crashes += 1
        self.crash_time[proc] = now
        if len(self.router.dead) >= self.router.nprocs:
            raise ReproError("all processes crashed; no survivors")
        if self.mcfg is None:
            # Workers of the dead process stop mid-run (their run_end
            # events are now stale); detection is modeled as a fixed
            # delay before survivors take over.
            self.sim.push(now + self.rcfg.detection_delay, "failover", proc)
        else:
            # No oracle: the crash is discovered only when the victim's
            # heartbeat replies stop arriving (missed-probe suspicion).
            self._undetected.add(proc)

    def on_failover(self, proc: int, now: float) -> None:
        moved = self.router.reassign(proc)
        install_end = self._migrate(moved, proc, now)
        self.report.failover_time += install_end - self.crash_time[proc]

    def _migrate(self, moved: list, src, now: float) -> float:
        """Install migrated programs at their new owners.

        The shared core of crash failover, degraded-mode demotion,
        rejoin state transfer and rebalance-back: bump each program's
        epoch (staling the lost/abandoned execution), restore it from
        its snapshot, replay the delivery log into its inbox, book the
        install cost, requeue it, and re-arm its checkpointed un-acked
        sends.  ``src`` is the migration source - one proc for a drain
        (failover/demotion/self-transfer), or a per-program dict for a
        multi-donor rebalance.  Returns the virtual time at which the
        last install completes.
        """
        st = self.st
        moved_set = set(moved)
        install_end = now
        for pid in moved:
            i = st.index[pid]
            new_p = self.router.proc_of[pid]
            st.epoch[i] += 1
            self.sim.note(
                now, "hb_migrate",
                (str(pid), src[pid] if isinstance(src, dict) else src,
                 new_p, st.epoch[i]),
            )
            self.scheduler.drop(i)
            prog = st.progs[i]
            ck = self.ckpt[pid]
            if ck is None:
                prog.init()  # never checkpointed: restart fresh
            else:
                prog.restore(ck.state)
            st.inited[i] = True
            # Replay: checkpointed unconsumed inbox + everything
            # delivered since the snapshot.  The log is NOT cleared -
            # it belongs to the snapshot, and this formula must stay
            # valid for a second failover.
            base = list(ck.inbox) if ck is not None else []
            st.inbox[i] = base + list(self.dlog[pid])
            st.state[i] = ProgramState.ACTIVE
            if self.san is not None:
                self.san.on_failover(pid, st.inbox[i])
            dur = self.rcfg.t_failover_program * self.slow(new_p, now)
            master = self.scheduler.masters[new_p]
            start, end = master.book(now, dur)
            if self.san is not None:
                self.san.on_booking(master.core, start, end)
            self.bd.add(master.core, "recovery", dur)
            self.sim.push(end, "requeue", (pid, st.epoch[i]))
            install_end = max(install_end, end)
        self.transport.rearm_after_failover(moved_set, self.ckpt, now)
        return install_end

    def on_health(self, now: float) -> None:
        """Periodic health probe: demote a persistently-slow live proc.

        Reads the scheduler's per-process slowdown EWMA.  A process
        whose EWMA exceeds ``demotion_factor`` times the median of all
        live owning processes collects a strike; ``demotion_patience``
        consecutive strikes demote it (capped at ``demotion_max``
        demotions per run, and never below two owning survivors).  Any
        probe that does not flag a process clears its strikes, so
        transient blips never trigger a migration.
        """
        a = self.rcfg.adaptive
        ewma = self.scheduler.proc_slow_ewma
        candidates = [
            p for p in range(self.router.nprocs)
            if p not in self.router.dead
            and p not in self.router.demoted
            and self.router.owned[p]
        ]
        flagged = None
        if (
            len(candidates) >= 2
            and len(self.router.demoted) < a.demotion_max
        ):
            med = sorted(ewma[p] for p in candidates)[len(candidates) // 2]
            worst = max(candidates, key=lambda p: (ewma[p], -p))
            if ewma[worst] > a.demotion_factor * med:
                flagged = worst
                self._strikes[worst] = self._strikes.get(worst, 0) + 1
                if self._strikes[worst] >= a.demotion_patience:
                    self.demote(worst, now)
        for p in list(self._strikes):
            if p != flagged:
                del self._strikes[p]
        self.sim.push(now + a.demotion_interval, "health", None)

    def demote(self, proc: int, now: float) -> None:
        """Rebalance ownership away from a slow-but-alive process.

        Reuses the crash-failover path end to end - epoch bump,
        checkpoint restore, delivery-log replay, send re-arming -
        without marking the process dead: it keeps acking and forwards
        any in-flight stream that still arrives at it.
        """
        self.sim.note(now, "hb_demote", (proc,))
        self.router.demote(proc)
        self.report.demotions += 1
        moved = self.router.reassign(proc)
        self._migrate(moved, proc, now)

    # -- elastic membership (heartbeats, suspicion, rejoin; DESIGN.md §14) ----------

    def _suspicion_timeout(self, p: int) -> float:
        """Adaptive silence bar for proc ``p``: one heartbeat period of
        tick slack plus the probe-reply RTO (estimator-driven once
        warmed up, the configured floor before the first sample)."""
        m = self.mcfg
        est = self._hb_rtt.get(p)
        if est is not None and est.srtt is not None:
            rto = est.rto(m.suspicion_k, m.min_timeout, m.max_timeout)
        else:
            rto = m.min_timeout
        return m.heartbeat_interval + rto

    def on_hbeat(self, now: float) -> None:
        """One heartbeat tick: probe every live proc, sweep for silence.

        Control-plane only - probes and replies never advance the
        makespan or count as progress.  The tick keeps re-arming while
        work remains *or* a crash is still undetected or a restart is
        in flight (quiescence can look true while a dead proc holds
        work); once the job is done the plane drains.
        """
        m = self.mcfg
        if (self.quiescent() and not self._undetected
                and self._pending_restart == 0):
            return  # job done and every crash accounted for: drain
        # An undetected crash keeps the plane alive even past tracker
        # quiescence: the dead proc may still hold programs whose state
        # never settled, and only a (detected) failover re-homes them.
        lat = self.transport.machine.latency_inter
        for p in range(self.router.nprocs):
            if p not in self.router.dead:
                # Reply delay = wire latency + the rank's response cost,
                # scaled by any active straggler window (deterministic:
                # no rng draw, so fault-plan draws are unperturbed).
                delay = lat + m.probe_cost * self.slow(p, now)
                self.report.heartbeats += 1
                self.sim.push(now + delay, "hback", (p, now))
            if p in self._suspected or p in self.router.fenced:
                continue
            if now - self._last_heard[p] > self._suspicion_timeout(p):
                self._suspect(p, now)
        self.sim.push(now + m.heartbeat_interval, "hbeat", None)

    def _suspect(self, p: int, now: float) -> None:
        """Silence past the timeout: fence ``p`` and drain its patches.

        A truly dead suspect fails over now (this is the detection the
        oracle used to fake); a falsely-suspected straggler is drained
        through the identical path - safe because it rejoins once its
        probes come back healthy.
        """
        self._suspected.add(p)
        self.report.suspicions += 1
        self.sim.note(now, "hb_suspect", (p, self.router.inc[p]))
        self.router.fence(p)
        if p in self.router.dead:
            self._undetected.discard(p)
            self.sim.push(now, "failover", p)
        else:
            self.report.false_suspicions += 1
            self._probes[p] = 0
            moved = self.router.reassign(p)
            self._migrate(moved, p, now)

    def on_hback(self, data: tuple, now: float) -> None:
        """A probe reply: feed the estimator, advance rejoin streaks."""
        p, sent_at = data
        m = self.mcfg
        self._last_heard[p] = now
        r = now - sent_at
        est = self._hb_rtt.get(p)
        if est is None:
            est = self._hb_rtt[p] = RttEstimator()
        est.sample(r, 0.125, 0.25)
        if self.quiescent():
            return  # job finished: keep liveness fresh, skip rejoins
        if p in self.router.dead:
            return  # died after replying; the silence will out
        if p in self.router.fenced or p in self.router.demoted:
            self._probes[p] = (
                self._probes.get(p, 0) + 1 if r <= m.min_timeout else 0
            )
            if self._probes[p] >= m.rejoin_probes:
                if p in self.router.fenced:
                    self._rejoin(p, now)
                else:
                    self._promote(p, now)

    def _rejoin(self, p: int, now: float) -> None:
        """Re-admit ``p`` under a new incarnation.

        Order matters for the happens-before invariants: the state
        transfer (snapshot restore + delivery-log anti-entropy for
        every program still resident) completes before the rejoin is
        recorded, and only then are patches rebalanced back.
        """
        inc = self.router.announce(p)
        own = sorted(self.router.owned[p])
        self.sim.note(now, "hb_xfer", (p, inc, len(own)))
        if own:
            self._migrate(own, p, now)
        self.sim.note(now, "hb_rejoin", (p, inc))
        self.report.rejoins += 1
        self._suspected.discard(p)
        self._probes.pop(p, None)
        self._last_heard[p] = now
        self._rebalance(p, now)

    def _promote(self, p: int, now: float) -> None:
        """Reverse a demotion after a healthy probe streak."""
        self.sim.note(now, "hb_promote", (p,))
        self.router.promote(p)
        self.report.promotions += 1
        self._probes.pop(p, None)
        self._strikes.pop(p, None)
        self._rebalance(p, now)

    def _rebalance(self, p: int, now: float) -> None:
        """Pull patches back to a re-admitted rank (bounded budget)."""
        moved, srcs = self.router.rebalance_to(p, self.mcfg.rebalance_budget)
        if moved:
            self.report.rebalanced_patches += len({pid.patch for pid in moved})
            self._migrate(moved, srcs, now)

    def expect_restart(self) -> None:
        """A restart event was scheduled (keeps the heartbeat plane
        alive across the down window)."""
        self._pending_restart += 1

    def on_restart(self, p: int, now: float) -> None:
        """A planned rank restart: announce a new incarnation, catch up
        via state transfer, rebalance back."""
        self._pending_restart -= 1
        if self.mcfg is None:
            # Oracle path: there is no rejoin protocol - the failover
            # already rehomed the proc's work for good, so a planned
            # restart is absorbed as a no-op.
            return
        if p not in self.router.dead or self.quiescent():
            return  # already recovered another way, or the job is done
        self.report.restarts += 1
        self.sim.note(now, "hb_restart", (p,))
        self._undetected.discard(p)
        self.scheduler.revive(p)
        self._rejoin(p, now)

    def on_ckpt(self, p: int, now: float) -> None:
        """One process's periodic incremental checkpoint round."""
        # Incremental: only snapshot programs that ran or received
        # streams since their last snapshot - a quiet program's
        # existing recovery point is still exact, so checkpoint cost
        # tracks activity, not residency.
        st = self.st
        own = [
            pid for pid in self.router.owned[p]
            if pid in self.dirty
            and st.index[pid] not in self.scheduler.running
            and st.inited[st.index[pid]]
        ]
        if own:
            dur = (
                self.rcfg.t_checkpoint_fixed
                + len(own) * self.rcfg.t_checkpoint_program
            ) * self.slow(p, now)
            master = self.scheduler.masters[p]
            start, end = master.book(now, dur)
            if self.san is not None:
                self.san.on_booking(master.core, start, end)
            self.bd.add(master.core, "recovery", dur)
            self.sim.observe(end)
            for pid in own:
                i = st.index[pid]
                self.ckpt[pid] = Checkpoint(
                    st.progs[i].checkpoint(),
                    list(st.inbox[i]),
                    self.transport.pending_of(pid),
                )
                self.dlog[pid] = []
                self.dirty.discard(pid)
                self.report.checkpoints += 1
        self.sim.push(now + self.rcfg.checkpoint_interval, "ckpt", p)

"""Checkpointing, delivery logs and failover orchestration (S20).

The top resilience layer of the runtime stack.  Each process
periodically snapshots its resident programs (local context +
unconsumed inbox + un-acked sends); snapshots are *incremental* - a
program untouched since its last snapshot is skipped, so checkpoint
cost follows activity rather than residency.  A delivery log records
streams delivered after a program's snapshot; it is the snapshot's
replay suffix and is only cleared when a fresh snapshot supersedes it.

On a crash, the dead process's patches are re-assigned to survivors
through the router; each migrated program is restored from its
snapshot, its delivery log replayed into its inbox, its checkpointed
un-acked sends retransmitted verbatim through the transport, and its
execution epoch bumped so events and workload commits of the lost
execution are recognized as stale.

Replay may re-batch a program's emissions differently than the lost
execution, so exact recovery additionally requires *idempotent* input
(programs built with ``resilient_input``; sweep programs dedupe on
remote-edge ids).  Since sweep kernels write each cell by assignment
from fixed upwind values, re-executed vertices recompute bit-identical
results: a recovered run matches the fault-free numerics exactly.

Degraded-mode demotion (opt-in via :class:`~repro.runtime.faults.
AdaptiveConfig.demotion`) reuses the same migration machinery without
declaring a crash: a periodic health probe compares each live owning
process's observed-slowdown EWMA (fed by the scheduler) against the
median of its peers; a process exceeding ``demotion_factor`` times the
median for ``demotion_patience`` consecutive probes is demoted - its
patches migrate to healthy survivors through the identical
checkpoint-restore + delivery-log-replay + send-re-arm path, while the
process itself stays alive to ack, forward in-flight streams, and
serve as a target of last resort.

Sits above every other runtime layer: it drives the router's owner
re-assignment, the transport's send re-arming, and the scheduler's
queue/run bookkeeping, and books its virtual costs on the master
timelines under the ``recovery`` breakdown category.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .._util import ReproError
from ..core.patch_program import ProgramState
from ..core.stream import ProgramId, Stream
from .faults import RecoveryConfig
from .metrics import Breakdown, RunReport
from .router import Router
from .scheduler import RunState, Scheduler
from .simulator import Simulator
from .transport import Transport

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .sanitizer import InvariantSanitizer

__all__ = ["Checkpoint", "RecoveryManager"]


@dataclass
class Checkpoint:
    """One program's recovery point."""

    state: object  # PatchProgram.checkpoint() snapshot
    inbox: list  # streams delivered but unconsumed at snapshot time
    pending: dict  # uid -> Stream: this program's un-acked sends


class RecoveryManager:
    """Incremental checkpoints + crash failover over the lower layers."""

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        transport: Transport,
        scheduler: Scheduler,
        rcfg: RecoveryConfig,
        report: RunReport,
        bd: Breakdown,
        st: RunState,
        slow: Callable[[int, float], float],
        sanitizer: InvariantSanitizer | None = None,
    ) -> None:
        self.sim = sim
        self.router = router
        self.transport = transport
        self.scheduler = scheduler
        self.rcfg = rcfg
        self.report = report
        self.bd = bd
        self.st = st
        self.slow = slow
        self.san = sanitizer
        self.ckpt: dict[ProgramId, Checkpoint | None] = {
            pid: None for pid in st.pids
        }
        self.dlog: dict[ProgramId, list[Stream]] = {pid: [] for pid in st.pids}
        self.dirty: set[ProgramId] = set()  # changed since last snapshot
        self.crash_time: dict[int, float] = {}
        self._strikes: dict[int, int] = {}  # proc -> consecutive flags
        scheduler.recovery = self  # completed runs mark themselves dirty

    def arm(self) -> None:
        """Schedule the first per-process checkpoint round (and the
        health probe, when degraded-mode demotion is on)."""
        for p in range(self.router.nprocs):
            self.sim.push(self.rcfg.checkpoint_interval, "ckpt", p)
        a = self.rcfg.adaptive
        if a is not None and a.demotion:
            self.sim.push(a.demotion_interval, "health", None)

    # -- bookkeeping hooks ---------------------------------------------------------

    def mark_dirty(self, pid: ProgramId) -> None:
        self.dirty.add(pid)

    def log_delivery(self, pid: ProgramId, s: Stream) -> None:
        """Record a delivery for replay if the owner crashes later."""
        self.dlog[pid].append(s)
        self.dirty.add(pid)

    def quiescent(self) -> bool:
        """True once the job is done: no outstanding progress events
        and no un-acked sends (crash/checkpoint events are then inert)."""
        return self.sim.live == 0 and not self.transport.pending

    # -- durability (snapshot/restore) ---------------------------------------------

    def state_dict(self) -> dict:
        """Codec-ready recovery state.

        Checkpoints flatten to plain dicts (a ``pending`` dict's
        insertion order is the retransmit order and round-trips
        verbatim); delivery logs keep their append order; the
        membership-only ``dirty`` set is sorted.
        """
        return {
            "ckpt": {
                pid: (
                    None if ck is None else {
                        "state": ck.state,
                        "inbox": list(ck.inbox),
                        "pending": dict(ck.pending),
                    }
                )
                for pid, ck in self.ckpt.items()
            },
            "dlog": {pid: list(v) for pid, v in self.dlog.items()},
            "dirty": sorted(self.dirty),
            "crash_time": dict(self.crash_time),
            "strikes": dict(self._strikes),
        }

    def load_state_dict(self, d: dict) -> None:
        self.ckpt = {
            pid: (
                None if ck is None
                else Checkpoint(ck["state"], list(ck["inbox"]), dict(ck["pending"]))
            )
            for pid, ck in d["ckpt"].items()
        }
        self.dlog = {pid: list(v) for pid, v in d["dlog"].items()}
        self.dirty = set(d["dirty"])
        self.crash_time = {int(p): float(t) for p, t in d["crash_time"].items()}
        self._strikes = {int(p): int(n) for p, n in d["strikes"].items()}

    # -- event handlers ------------------------------------------------------------

    def on_crash(self, proc: int, now: float) -> None:
        self.sim.note(now, "hb_crash", (proc,))
        self.router.mark_dead(proc)
        self.report.crashes += 1
        self.crash_time[proc] = now
        if len(self.router.dead) >= self.router.nprocs:
            raise ReproError("all processes crashed; no survivors")
        # Workers of the dead process stop mid-run (their run_end
        # events are now stale); detection is modeled as a fixed delay
        # before survivors take over.
        self.sim.push(now + self.rcfg.detection_delay, "failover", proc)

    def on_failover(self, proc: int, now: float) -> None:
        moved = self.router.reassign(proc)
        install_end = self._migrate(moved, proc, now)
        self.report.failover_time += install_end - self.crash_time[proc]

    def _migrate(self, moved: list, src: int, now: float) -> float:
        """Install migrated programs at their new owners.

        The shared core of crash failover and degraded-mode demotion:
        bump each program's epoch (staling the lost/abandoned
        execution), restore it from its snapshot, replay the delivery
        log into its inbox, book the install cost, requeue it, and
        re-arm its checkpointed un-acked sends.  Returns the virtual
        time at which the last install completes.
        """
        st = self.st
        moved_set = set(moved)
        install_end = now
        for pid in moved:
            i = st.index[pid]
            new_p = self.router.proc_of[pid]
            st.epoch[i] += 1
            self.sim.note(
                now, "hb_migrate", (str(pid), src, new_p, st.epoch[i])
            )
            self.scheduler.drop(i)
            prog = st.progs[i]
            ck = self.ckpt[pid]
            if ck is None:
                prog.init()  # never checkpointed: restart fresh
            else:
                prog.restore(ck.state)
            st.inited[i] = True
            # Replay: checkpointed unconsumed inbox + everything
            # delivered since the snapshot.  The log is NOT cleared -
            # it belongs to the snapshot, and this formula must stay
            # valid for a second failover.
            base = list(ck.inbox) if ck is not None else []
            st.inbox[i] = base + list(self.dlog[pid])
            st.state[i] = ProgramState.ACTIVE
            if self.san is not None:
                self.san.on_failover(pid, st.inbox[i])
            dur = self.rcfg.t_failover_program * self.slow(new_p, now)
            master = self.scheduler.masters[new_p]
            start, end = master.book(now, dur)
            if self.san is not None:
                self.san.on_booking(master.core, start, end)
            self.bd.add(master.core, "recovery", dur)
            self.sim.push(end, "requeue", (pid, st.epoch[i]))
            install_end = max(install_end, end)
        self.transport.rearm_after_failover(moved_set, self.ckpt, now)
        return install_end

    def on_health(self, now: float) -> None:
        """Periodic health probe: demote a persistently-slow live proc.

        Reads the scheduler's per-process slowdown EWMA.  A process
        whose EWMA exceeds ``demotion_factor`` times the median of all
        live owning processes collects a strike; ``demotion_patience``
        consecutive strikes demote it (capped at ``demotion_max``
        demotions per run, and never below two owning survivors).  Any
        probe that does not flag a process clears its strikes, so
        transient blips never trigger a migration.
        """
        a = self.rcfg.adaptive
        ewma = self.scheduler.proc_slow_ewma
        candidates = [
            p for p in range(self.router.nprocs)
            if p not in self.router.dead
            and p not in self.router.demoted
            and self.router.owned[p]
        ]
        flagged = None
        if (
            len(candidates) >= 2
            and len(self.router.demoted) < a.demotion_max
        ):
            med = sorted(ewma[p] for p in candidates)[len(candidates) // 2]
            worst = max(candidates, key=lambda p: (ewma[p], -p))
            if ewma[worst] > a.demotion_factor * med:
                flagged = worst
                self._strikes[worst] = self._strikes.get(worst, 0) + 1
                if self._strikes[worst] >= a.demotion_patience:
                    self.demote(worst, now)
        for p in list(self._strikes):
            if p != flagged:
                del self._strikes[p]
        self.sim.push(now + a.demotion_interval, "health", None)

    def demote(self, proc: int, now: float) -> None:
        """Rebalance ownership away from a slow-but-alive process.

        Reuses the crash-failover path end to end - epoch bump,
        checkpoint restore, delivery-log replay, send re-arming -
        without marking the process dead: it keeps acking and forwards
        any in-flight stream that still arrives at it.
        """
        self.sim.note(now, "hb_demote", (proc,))
        self.router.demote(proc)
        self.report.demotions += 1
        moved = self.router.reassign(proc)
        self._migrate(moved, proc, now)

    def on_ckpt(self, p: int, now: float) -> None:
        """One process's periodic incremental checkpoint round."""
        # Incremental: only snapshot programs that ran or received
        # streams since their last snapshot - a quiet program's
        # existing recovery point is still exact, so checkpoint cost
        # tracks activity, not residency.
        st = self.st
        own = [
            pid for pid in self.router.owned[p]
            if pid in self.dirty
            and st.index[pid] not in self.scheduler.running
            and st.inited[st.index[pid]]
        ]
        if own:
            dur = (
                self.rcfg.t_checkpoint_fixed
                + len(own) * self.rcfg.t_checkpoint_program
            ) * self.slow(p, now)
            master = self.scheduler.masters[p]
            start, end = master.book(now, dur)
            if self.san is not None:
                self.san.on_booking(master.core, start, end)
            self.bd.add(master.core, "recovery", dur)
            self.sim.observe(end)
            for pid in own:
                i = st.index[pid]
                self.ckpt[pid] = Checkpoint(
                    st.progs[i].checkpoint(),
                    list(st.inbox[i]),
                    self.transport.pending_of(pid),
                )
                self.dlog[pid] = []
                self.dirty.discard(pid)
                self.report.checkpoints += 1
        self.sim.push(now + self.rcfg.checkpoint_interval, "ckpt", p)

"""Invariant sanitizer: toggleable runtime self-checks (chaos harness).

Fault scenarios exercise rare interleavings (multi-failover races,
duplicate storms, partition-heal bursts) where a silent bookkeeping
bug would corrupt results long before any test notices.  The sanitizer
turns the runtime's core invariants into hard assertions, checked live
on every delivery, commit, booking and failover:

* **exactly-once delivery** - a stamped message uid is handed to a
  program at most once, only on a live process, and only on the
  destination program's current owner;
* **epoch-monotonic commits** - per program, workload commits never
  regress to an older epoch, and within the current epoch the
  remaining-workload counter never increases;
* **monotonic timelines** - every core's booked intervals have
  non-negative finite durations and non-decreasing end times;
* **failover consistency** - a rebuilt inbox (checkpoint + delivery
  log) contains no duplicate message uids, and the restored program's
  owner really is the failover target;
* **incarnation freshness** - with elastic membership armed, no stream
  stamped by a previous life of its sending process is ever delivered
  (the transport's fence must reject it first), and nothing is
  delivered on a fenced process;
* **end-to-end exactly-once per edge** - after the run, each resilient
  sweep program's applied remote-edge sets match the edge sets its
  upwind neighbours' graphs emit: nothing lost, nothing double-applied
  (checked from topology, independent of the delivery machinery).

All checks are O(1) per event (the final sweep is O(edges) once) and
off by default; the chaos campaign and the fault tests run with them
on.  A violation raises :class:`SanitizerError` naming the invariant.
"""

from __future__ import annotations

from ..core.stream import ProgramId, Stream
from .._util import ReproError
from .router import Router

__all__ = ["SanitizerError", "InvariantSanitizer"]


class SanitizerError(ReproError):
    """A runtime invariant was violated (always a bug, never a fault)."""


class InvariantSanitizer:
    """Live invariant checks wired through transport/scheduler/recovery."""

    def __init__(self, router: Router):
        self.router = router
        self._delivered: set[tuple] = set()  # uids handed to programs
        self._commit: dict[ProgramId, tuple[int, float]] = {}  # pid -> (epoch, rem)
        self._core_end: dict[tuple, float] = {}  # core -> last booked end
        self.checks = 0  # total assertions evaluated (reporting)

    # -- transport: delivery plane --------------------------------------------------

    def on_delivery(self, s: Stream, proc: int) -> None:
        """A stamped stream is about to be handed to its program."""
        self.checks += 1
        uid = s.uid
        if uid in self._delivered:
            raise SanitizerError(
                f"duplicate delivery of message {uid!r} to {s.dst!r}: "
                "exactly-once violated (dedup failed)"
            )
        if proc in self.router.dead:
            raise SanitizerError(
                f"message {uid!r} delivered on dead proc {proc}"
            )
        owner = self.router.proc_of[s.dst]
        if owner != proc:
            raise SanitizerError(
                f"message {uid!r} for {s.dst!r} delivered on proc {proc} "
                f"but the program's owner is proc {owner}"
            )
        if s.inc is not None:
            sp, si = s.inc
            if si < self.router.inc[sp]:
                raise SanitizerError(
                    f"message {uid!r} from a stale incarnation of proc "
                    f"{sp} (life {si} < current {self.router.inc[sp]}) "
                    "was delivered: the incarnation fence leaked"
                )
            if proc in self.router.fenced:
                raise SanitizerError(
                    f"message {uid!r} delivered on fenced proc {proc}"
                )
        self._delivered.add(uid)

    # -- scheduler: commit and booking planes ---------------------------------------

    def on_commit(self, pid: ProgramId, remaining: float, epoch: int) -> None:
        """A workload commit is being offered to the tracker."""
        self.checks += 1
        prev = self._commit.get(pid)
        if prev is not None:
            ep0, rem0 = prev
            if epoch < ep0:
                return  # stale-epoch commit: the tracker ignores it too
            if epoch == ep0 and remaining > rem0:
                raise SanitizerError(
                    f"workload of {pid!r} regressed within epoch {epoch}: "
                    f"remaining {rem0} -> {remaining}"
                )
        self._commit[pid] = (epoch, remaining)

    def on_booking(self, core: tuple, start: float, end: float) -> None:
        """A resource interval was booked on a core timeline."""
        self.checks += 1
        if not (0.0 <= start <= end and end < float("inf")):
            raise SanitizerError(
                f"core {core!r} booked a malformed interval "
                f"[{start}, {end}]"
            )
        last = self._core_end.get(core, 0.0)
        if end < last:
            raise SanitizerError(
                f"core {core!r} timeline went backwards: booked end "
                f"{end} after {last}"
            )
        self._core_end[core] = end

    # -- recovery: failover plane ---------------------------------------------------

    def on_failover(self, pid: ProgramId, inbox: list) -> None:
        """A migrated program's inbox was rebuilt from ckpt + dlog."""
        self.checks += 1
        seen: set[tuple] = set()
        for s in inbox:
            uid = s.uid
            if uid is None:
                continue
            if uid in seen:
                raise SanitizerError(
                    f"failover of {pid!r} rebuilt an inbox with "
                    f"duplicate message {uid!r}: checkpoint and delivery "
                    "log overlap"
                )
            seen.add(uid)
        if self.router.proc_of[pid] in self.router.dead:
            raise SanitizerError(
                f"failover installed {pid!r} on dead proc "
                f"{self.router.proc_of[pid]}"
            )

    # -- post-run: end-to-end edge accounting ---------------------------------------

    def check_final(self, progs: dict) -> None:
        """After quiescence: every resilient sweep program applied each
        remote in-edge exactly once, per its upwind neighbours' graphs.

        Topology-derived, so it catches lost or double-applied
        dependencies even when the delivery machinery's own books
        balance.  Programs without the resilient sweep surface are
        skipped.
        """
        for pid, prog in progs.items():
            if not getattr(prog, "resilient_input", False):
                continue
            graph = getattr(prog, "graph", None)
            if graph is None or not hasattr(graph, "adjacency_lists"):
                continue
            _, remote_adj = graph.adjacency_lists()
            per_dst: dict[int, set[int]] = {}
            for targets in remote_adj:
                for dp, _dl, eid in targets:
                    per_dst.setdefault(dp, set()).add(eid)
            for dp, eids in per_dst.items():
                self.checks += 1
                dst = progs.get(ProgramId(dp, pid.task))
                if dst is None or not hasattr(dst, "_applied"):
                    continue
                applied = dst._applied.get(pid.patch, set())
                missing = eids - applied
                extra = applied - eids
                if missing or extra:
                    raise SanitizerError(
                        f"edge accounting of {ProgramId(dp, pid.task)!r} "
                        f"from upwind {pid!r} broken: "
                        f"{len(missing)} edges never applied, "
                        f"{len(extra)} unknown edges applied"
                    )

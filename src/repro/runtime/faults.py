"""Fault injection and recovery configuration for the DES cluster.

The paper's runtime targets 76,800 cores, a scale where node failures,
stragglers and lost messages are the norm rather than the exception.
This module turns the DES from a benchmark harness into a robustness
testbed: a :class:`FaultPlan` describes *what goes wrong* (fail-stop
process crashes at virtual times, transient straggler windows, message
drop/duplication probabilities), a :class:`FaultInjector` realizes the
plan deterministically from a seed, and a :class:`RecoveryConfig`
parameterizes the runtime's countermeasures (per-message acks with
timeout/backoff retransmission, periodic lightweight checkpoints,
crash detection and dynamic owner re-assignment).

Everything is expressed in *virtual* seconds of the simulated cluster,
and every random draw comes from one seeded generator consumed in
deterministic event order - two runs with the same plan and seed are
bit-identical, which is what makes fault scenarios regression-testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ReproError

__all__ = [
    "CrashFault",
    "StragglerWindow",
    "FaultPlan",
    "FaultInjector",
    "RecoveryConfig",
]


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop crash of one process at a virtual time.

    The process stops executing, its in-flight receives are lost, and
    its patches are re-assigned to survivors by the recovery protocol.
    A crash scheduled after the run has quiesced is ignored (the job
    finished before the fault).
    """

    proc: int
    time: float

    def __post_init__(self):
        if self.proc < 0:
            raise ReproError("crash proc must be non-negative")
        if self.time < 0:
            raise ReproError("crash time must be non-negative")


@dataclass(frozen=True)
class StragglerWindow:
    """Transient slowdown of one process: every virtual-time cost booked
    on its cores during [start, end) is multiplied by ``factor``."""

    proc: int
    start: float
    end: float
    factor: float

    def __post_init__(self):
        if self.proc < 0:
            raise ReproError("straggler proc must be non-negative")
        if not (0 <= self.start < self.end):
            raise ReproError("straggler window must satisfy 0 <= start < end")
        if self.factor < 1.0:
            raise ReproError("straggler factor must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded description of the faults of one run."""

    crashes: tuple = ()
    stragglers: tuple = ()
    p_drop: float = 0.0  # per remote message (data and acks)
    p_duplicate: float = 0.0  # per remote data message
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        if not (0.0 <= self.p_drop < 1.0):
            raise ReproError("p_drop must be in [0, 1)")
        if not (0.0 <= self.p_duplicate < 1.0):
            raise ReproError("p_duplicate must be in [0, 1)")

    def needs_recovery(self) -> bool:
        """True when the plan can lose work or messages (stragglers
        alone only delay; they need no recovery machinery)."""
        return bool(self.crashes) or self.p_drop > 0 or self.p_duplicate > 0

    def crashed_procs(self) -> set:
        return {c.proc for c in self.crashes}

    def validate(self, nprocs: int, programs) -> None:
        """Reject plans inconsistent with the layout or program set."""
        for w in self.stragglers:
            if w.proc >= nprocs:
                raise ReproError(
                    f"straggler window targets proc {w.proc} but the "
                    f"layout has only {nprocs} processes"
                )
        if self.crashes:
            crashed = self.crashed_procs()
            if any(c >= nprocs for c in crashed):
                raise ReproError(
                    f"crash targets proc {max(crashed)} but the layout "
                    f"has only {nprocs} processes"
                )
            if len(crashed) >= nprocs:
                raise ReproError(
                    "fault plan crashes every process; no survivors"
                )
            for prog in programs:
                if not getattr(prog, "resilient_input", False):
                    raise ReproError(
                        "crash recovery requires idempotent programs: "
                        f"{prog.id!r} does not set resilient_input "
                        "(build sweep programs with resilient=True)"
                    )


class FaultInjector:
    """Realizes a :class:`FaultPlan` with one seeded generator.

    Draws are consumed in the runtime's (deterministic) event order, so
    a fixed (plan, seed) pair injects the identical fault sequence on
    every run.  The injector is stateless apart from the generator.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._windows: dict[int, list[StragglerWindow]] = {}
        for w in plan.stragglers:
            self._windows.setdefault(w.proc, []).append(w)

    def slowdown(self, proc: int, now: float) -> float:
        """Multiplicative cost factor on ``proc`` at virtual time ``now``."""
        f = 1.0
        for w in self._windows.get(proc, ()):
            if w.start <= now < w.end:
                f *= w.factor
        return f

    def message_fate(self) -> str:
        """'deliver', 'drop' or 'duplicate' for one remote data message."""
        p = self.plan
        if p.p_drop == 0.0 and p.p_duplicate == 0.0:
            return "deliver"  # no draw: a zero-rate injector is inert
        u = self._rng.random()
        if u < p.p_drop:
            return "drop"
        if u < p.p_drop + p.p_duplicate:
            return "duplicate"
        return "deliver"

    def ack_dropped(self) -> bool:
        """Whether one ack control message is lost in transit."""
        if self.plan.p_drop == 0.0:
            return False
        return bool(self._rng.random() < self.plan.p_drop)


@dataclass(frozen=True)
class RecoveryConfig:
    """Parameters of the runtime's fault-tolerance machinery.

    All times are virtual seconds.  The virtual costs (``t_*``) are
    booked under the ``recovery`` breakdown category, so the overhead
    of resilience is visible in the Fig. 16-style accounting.
    """

    ack_timeout: float = 120e-6  # first retransmission timeout
    backoff: float = 2.0  # timeout multiplier per retry
    max_retries: int = 10  # per message; exceeded -> ReproError
    checkpoint_interval: float = 200e-6  # per-process checkpoint period
    detection_delay: float = 100e-6  # crash -> failover start
    t_checkpoint_fixed: float = 2.0e-6  # master cost per checkpoint event
    t_checkpoint_program: float = 0.5e-6  # + per program snapshotted
    t_failover_program: float = 5.0e-6  # master cost to install a migrant

    def __post_init__(self):
        if self.ack_timeout <= 0 or self.checkpoint_interval <= 0:
            raise ReproError("timeouts and intervals must be positive")
        if self.backoff < 1.0:
            raise ReproError("backoff must be >= 1")
        if self.max_retries < 1:
            raise ReproError("max_retries must be >= 1")
        if self.detection_delay < 0:
            raise ReproError("detection_delay must be non-negative")

"""Fault injection and recovery configuration for the DES cluster.

The paper's runtime targets 76,800 cores, a scale where node failures,
stragglers and lost messages are the norm rather than the exception.
This module turns the DES from a benchmark harness into a robustness
testbed: a :class:`FaultPlan` describes *what goes wrong* (fail-stop
process crashes at virtual times - optionally cascading to a seeded
subset of surviving neighbours - transient straggler windows, timed
directed network partitions, message drop/duplication/corruption
probabilities), a :class:`FaultInjector` realizes the plan
deterministically from a seed, and a :class:`RecoveryConfig`
parameterizes the runtime's countermeasures (per-message acks with
timeout/backoff retransmission, per-stream checksums with NACK-driven
retransmit, periodic lightweight checkpoints, crash detection and
dynamic owner re-assignment, and the no-progress liveness watchdog).

Everything is expressed in *virtual* seconds of the simulated cluster,
and every random draw comes from one seeded generator consumed in
deterministic event order - two runs with the same plan and seed are
bit-identical, which is what makes fault scenarios regression-testable.
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .._util import ReproError

__all__ = [
    "CrashFault",
    "StragglerWindow",
    "LinkPartition",
    "FaultPlan",
    "FaultInjector",
    "AdaptiveConfig",
    "MembershipConfig",
    "RecoveryConfig",
    "arm_recovery",
]


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop crash of one process at a virtual time.

    The process stops executing, its in-flight receives are lost, and
    its patches are re-assigned to survivors by the recovery protocol.
    A crash scheduled after the run has quiesced is ignored (the job
    finished before the fault).

    A crash can *cascade* (correlated failure: a rack power event, a
    shared-switch loss): each surviving process independently follows
    the victim with probability ``cascade``, at a seeded time within
    ``cascade_window`` of the original crash, up to ``cascade_max``
    followers.  Cascaded crashes do not themselves cascade further.

    ``restart_after`` models node churn rather than permanent loss:
    when positive, the process comes back ``restart_after`` virtual
    seconds after the crash, announces itself with a bumped incarnation
    number and rejoins the run (snapshot state transfer plus
    delivery-log anti-entropy; DESIGN.md §14).  ``0`` keeps the
    fail-stop-forever semantics of PRs 1-8.  Cascade followers never
    restart (they carry no fault object).
    """

    proc: int
    time: float
    cascade: float = 0.0  # per-survivor follow probability
    cascade_window: float = 0.0  # followers crash within (time, time + window]
    cascade_max: int = 0  # hard cap on followers (bounds total loss)
    restart_after: float = 0.0  # node comes back after this delay; 0 = never

    def __post_init__(self):
        if self.proc < 0:
            raise ReproError("crash proc must be non-negative")
        if self.time < 0:
            raise ReproError("crash time must be non-negative")
        if not (0.0 <= self.cascade <= 1.0):
            raise ReproError("cascade probability must be in [0, 1]")
        if self.cascade > 0 and self.cascade_window <= 0:
            raise ReproError(
                "a cascading crash needs a positive cascade_window"
            )
        if self.cascade_max < 0:
            raise ReproError("cascade_max must be non-negative")
        if self.restart_after < 0:
            raise ReproError("restart_after must be non-negative")

    def cascades(self) -> bool:
        return self.cascade > 0 and self.cascade_max > 0

    def restarts(self) -> bool:
        return self.restart_after > 0


@dataclass(frozen=True)
class StragglerWindow:
    """Transient slowdown of one process: every virtual-time cost booked
    on its cores during [start, end) is multiplied by ``factor``.

    Overlapping windows on one process *multiply* (two independent
    slowdowns compound), pinned down by ``FaultInjector.slowdown`` tests.
    """

    proc: int
    start: float
    end: float
    factor: float

    def __post_init__(self):
        if self.proc < 0:
            raise ReproError("straggler proc must be non-negative")
        if not (0 <= self.start < self.end):
            raise ReproError("straggler window must satisfy 0 <= start < end")
        if self.factor < 1.0:
            raise ReproError("straggler factor must be >= 1")


@dataclass(frozen=True)
class LinkPartition:
    """Timed directed network partition of one process-pair link.

    Every message (data, ack or nack) put on the ``src -> dst`` wire
    during [start, end) is silently black-holed: the sender gets no
    failure signal and recovers only through ack-timeout retransmission
    once the partition heals.  ``end`` may be ``math.inf`` for a
    partition that never heals (the canonical unrecoverable-stall
    scenario caught by the liveness watchdog).  Cut both directions by
    listing both ``(src, dst)`` and ``(dst, src)``.
    """

    src: int
    dst: int
    start: float
    end: float

    def __post_init__(self):
        if self.src < 0 or self.dst < 0:
            raise ReproError("partition procs must be non-negative")
        if self.src == self.dst:
            raise ReproError("partition must cut a link between two "
                             "distinct processes")
        if not (0 <= self.start < self.end):
            raise ReproError("partition window must satisfy 0 <= start < end")

    @property
    def heals(self) -> bool:
        return math.isfinite(self.end)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded description of the faults of one run."""

    crashes: tuple = ()
    stragglers: tuple = ()
    partitions: tuple = ()
    p_drop: float = 0.0  # per remote message (data and acks)
    p_duplicate: float = 0.0  # per remote data message
    p_corrupt: float = 0.0  # per remote data message (in-flight bit flip)
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        if not (0.0 <= self.p_drop < 1.0):
            raise ReproError("p_drop must be in [0, 1)")
        if not (0.0 <= self.p_duplicate < 1.0):
            raise ReproError("p_duplicate must be in [0, 1)")
        if not (0.0 <= self.p_corrupt < 1.0):
            raise ReproError("p_corrupt must be in [0, 1)")
        if self.p_drop + self.p_duplicate + self.p_corrupt >= 1.0:
            raise ReproError(
                "p_drop + p_duplicate + p_corrupt must stay below 1"
            )
        by_proc: dict[int, list] = {}
        for c in self.crashes:
            by_proc.setdefault(c.proc, []).append(c)
        for p, cs in by_proc.items():
            cs.sort(key=lambda c: c.time)
            for a, b in zip(cs, cs[1:]):
                if not a.restarts():
                    raise ReproError(
                        f"fault plan crashes proc {p} twice but the "
                        "earlier crash never restarts; a fail-stop "
                        "process dies at most once per incarnation - "
                        "give the earlier crash restart_after > 0 or "
                        "merge the duplicates"
                    )
                if b.time <= a.time + a.restart_after:
                    raise ReproError(
                        f"per-incarnation crashes of proc {p} must be "
                        f"strictly ordered: the next crash (t={b.time}) "
                        "must come after the previous restart "
                        f"(t={a.time} + {a.restart_after})"
                    )

    def needs_recovery(self) -> bool:
        """True when the plan can lose work or messages (stragglers
        alone only delay; they need no recovery machinery)."""
        return (
            bool(self.crashes)
            or bool(self.partitions)
            or self.p_drop > 0
            or self.p_duplicate > 0
            or self.p_corrupt > 0
        )

    def crashed_procs(self) -> set:
        return {c.proc for c in self.crashes}

    def permanent_procs(self) -> set:
        """Procs whose *last* planned crash never restarts (the
        fail-stop-forever victims; flapping nodes are excluded)."""
        last: dict[int, CrashFault] = {}
        for c in self.crashes:
            prev = last.get(c.proc)
            if prev is None or c.time > prev.time:
                last[c.proc] = c
        return {p for p, c in last.items() if not c.restarts()}

    def restart_delay(self, proc: int, time: float) -> float:
        """``restart_after`` of the planned crash ``(proc, time)``.

        0.0 when the crash never restarts or has no plan entry (a
        cascade follower) - the lookup key is exact because planned
        per-incarnation crashes carry distinct times.
        """
        for c in self.crashes:
            if c.proc == proc and c.time == time:
                return c.restart_after
        return 0.0

    def max_casualties(self) -> int:
        """Upper bound on processes the plan can kill (crashes plus
        cascade caps); the dynamic cascade draws never exceed it."""
        return len(self.crashes) + sum(
            c.cascade_max for c in self.crashes if c.cascades()
        )

    def validate(
        self,
        nprocs: int,
        programs: Sequence,
        horizon: float | None = None,
    ) -> None:
        """Reject plans inconsistent with the layout or program set.

        ``horizon``, when given, is the run's armed watchdog horizon: a
        straggler or partition window that only *starts* at or beyond
        it is almost certainly a misconfigured plan - the run either
        quiesces or is declared stalled before the fault ever fires, so
        the scenario silently tests nothing.  Such windows draw a
        :class:`UserWarning` (not an error: a long run that keeps
        progressing past the horizon can still legitimately reach
        them).
        """
        for w in self.stragglers:
            if w.proc >= nprocs:
                raise ReproError(
                    f"straggler window targets proc {w.proc} but the "
                    f"layout has only {nprocs} processes"
                )
            if horizon is not None and horizon > 0 and w.start >= horizon:
                warnings.warn(
                    f"straggler window on proc {w.proc} starts at "
                    f"t={w.start:.6f}s, at or beyond the watchdog "
                    f"horizon ({horizon:.6f}s): if the run quiesces or "
                    "stalls first, the fault silently never fires",
                    stacklevel=2,
                )
        for cut in self.partitions:
            if cut.src >= nprocs or cut.dst >= nprocs:
                raise ReproError(
                    f"partition cuts link {cut.src}->{cut.dst} but the "
                    f"layout has only {nprocs} processes"
                )
            if horizon is not None and horizon > 0 and cut.start >= horizon:
                warnings.warn(
                    f"partition of link {cut.src}->{cut.dst} starts at "
                    f"t={cut.start:.6f}s, at or beyond the watchdog "
                    f"horizon ({horizon:.6f}s): if the run quiesces or "
                    "stalls first, the fault silently never fires",
                    stacklevel=2,
                )
        if self.crashes:
            crashed = self.crashed_procs()
            if any(c >= nprocs for c in crashed):
                raise ReproError(
                    f"crash targets proc {max(crashed)} but the layout "
                    f"has only {nprocs} processes"
                )
            # Flapping (restarting) victims come back; only the procs
            # whose last crash is permanent count towards total loss.
            if len(self.permanent_procs()) >= nprocs:
                raise ReproError(
                    "fault plan permanently crashes every process; total "
                    "loss is unrecoverable (no survivors to fail over to)"
                )
            for prog in programs:
                if not getattr(prog, "resilient_input", False):
                    raise ReproError(
                        "crash recovery requires idempotent programs: "
                        f"{prog.id!r} does not set resilient_input "
                        "(build sweep programs with resilient=True)"
                    )


class FaultInjector:
    """Realizes a :class:`FaultPlan` with one seeded generator.

    Draws are consumed in the runtime's (deterministic) event order, so
    a fixed (plan, seed) pair injects the identical fault sequence on
    every run.  The injector is stateless apart from the generator.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._windows: dict[int, list[StragglerWindow]] = {}
        for w in plan.stragglers:
            self._windows.setdefault(w.proc, []).append(w)
        self._cuts: dict[tuple[int, int], list[LinkPartition]] = {}
        for cut in plan.partitions:
            self._cuts.setdefault((cut.src, cut.dst), []).append(cut)

    def slowdown(self, proc: int, now: float) -> float:
        """Multiplicative cost factor on ``proc`` at virtual time ``now``.

        Overlapping windows multiply (each window is an independent
        slowdown source); a window is half-open: active on [start, end).
        """
        f = 1.0
        for w in self._windows.get(proc, ()):
            if w.start <= now < w.end:
                f *= w.factor
        return f

    def link_cut(self, src: int, dst: int, now: float) -> bool:
        """Whether the directed ``src -> dst`` link is partitioned now."""
        for cut in self._cuts.get((src, dst), ()):
            if cut.start <= now < cut.end:
                return True
        return False

    def cut_window(self, src: int, dst: int, now: float) -> LinkPartition | None:
        """The active partition window on ``src -> dst``, if any (used
        by the stall watchdog to name lost edges)."""
        for cut in self._cuts.get((src, dst), ()):
            if cut.start <= now < cut.end:
                return cut
        return None

    def message_fate(self) -> str:
        """'deliver', 'drop', 'duplicate' or 'corrupt' for one remote
        data message."""
        p = self.plan
        if p.p_drop == 0.0 and p.p_duplicate == 0.0 and p.p_corrupt == 0.0:
            return "deliver"  # no draw: a zero-rate injector is inert
        u = self._rng.random()
        if u < p.p_drop:
            return "drop"
        if u < p.p_drop + p.p_duplicate:
            return "duplicate"
        if u < p.p_drop + p.p_duplicate + p.p_corrupt:
            return "corrupt"
        return "deliver"

    def corrupt_position(self, nbytes: int) -> tuple[int, int]:
        """Seeded (byte index, bit index) of one in-flight bit flip."""
        byte = int(self._rng.integers(0, max(1, nbytes)))
        bit = int(self._rng.integers(0, 8))
        return byte, bit

    def ack_dropped(self) -> bool:
        """Whether one ack control message is lost in transit."""
        if self.plan.p_drop == 0.0:
            return False
        return bool(self._rng.random() < self.plan.p_drop)

    # -- durability (snapshot/restore) ---------------------------------------------

    def state_dict(self) -> dict:
        """Codec-ready injector state: only the generator advances.

        The PCG64 state dict carries 128-bit integers; the snapshot
        codec's big-int path round-trips them exactly.
        """
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, d: dict) -> None:
        self._rng.bit_generator.state = d["rng"]

    def cascade_after(
        self, proc: int, alive: list, now: float
    ) -> list[tuple[int, float]]:
        """Cascade followers of the crash of ``proc``.

        Looks up the plan's fault for ``proc`` and delegates to
        :meth:`cascade_victims`; a crash with no plan entry (a cascaded
        crash) or a non-cascading entry follows nobody and consumes no
        randomness.
        """
        for c in self.plan.crashes:
            if c.proc == proc:
                return self.cascade_victims(c, alive, now)
        return []

    def cascade_victims(
        self, fault: CrashFault, alive: list, now: float
    ) -> list[tuple[int, float]]:
        """Seeded followers of a cascading crash: ``(proc, time)`` pairs.

        Draws one follow decision per survivor in deterministic (sorted)
        order, capped at ``cascade_max`` victims; each victim crashes at
        a seeded time within ``(now, now + cascade_window]``.  Cascaded
        crashes never cascade further (they carry no fault object).
        """
        if not fault.cascades():
            return []
        victims: list[tuple[int, float]] = []
        for q in sorted(alive):
            if q == fault.proc:
                continue
            if len(victims) >= fault.cascade_max:
                break
            if self._rng.random() < fault.cascade:
                delay = self._rng.random() * fault.cascade_window
                victims.append((q, now + delay))
        return victims


@dataclass(frozen=True)
class AdaptiveConfig:
    """Opt-in adaptive resilience features (all off by default).

    PRs 1-3 built a runtime that *survives* degraded conditions; this
    config makes it *adapt* to them.  Four independent mechanisms, each
    rng-neutral when off (the golden fingerprints are unchanged):

    * **adaptive RTO** - per-link Jacobson RTT estimation (SRTT/RTTVAR
      with Karn's rule: no sample from retransmitted or hedged
      messages) replacing the fixed ``RecoveryConfig.ack_timeout``
      with ``clamp(SRTT + rto_k * RTTVAR, min_rto, max_rto)``;
    * **hedging** - a single speculative extra copy of a message still
      unacked after ``hedge_factor`` of its RTO (tail-latency cut;
      receiver-side dedup makes the copy invisible);
    * **speculation** - straggler detection from the percentile of
      recent run durations, with a backup execution of a stalled
      patch-program booked on the fastest other process; first
      completion wins, the loser is discarded through the epoch-keyed
      run-dedup, so numerics stay bitwise-exact;
    * **backpressure** - credit-based flow control bounding each
      process's in-flight inbound messages to ``inbox_credits``;
      excess sends park until a credit frees, and the stall time is
      booked under the ``backpressure`` breakdown category;
    * **demotion** - periodic health checks over per-process observed
      slowdown; a persistently-slow-but-alive process has its patches
      rebalanced away through the crash-failover path without being
      declared dead (it keeps routing/forwarding its in-flight
      traffic).  Requires resilient programs, like crash recovery.

    All times are virtual seconds; every detection input is observed
    runtime behavior (RTT samples, booked durations), never the fault
    plan itself.
    """

    # -- adaptive RTO (Jacobson/Karn, RFC 6298 shape)
    adaptive_rto: bool = False
    srtt_gain: float = 0.125  # alpha: SRTT update weight
    rttvar_gain: float = 0.25  # beta: RTTVAR update weight
    rto_k: float = 4.0  # RTO = SRTT + k * RTTVAR
    min_rto: float = 20e-6  # RTO floor (spurious-retransmit guard)
    # -- hedged retransmits
    hedging: bool = False
    hedge_factor: float = 0.75  # hedge after this fraction of the RTO
    # -- speculative straggler re-execution
    speculation: bool = False
    spec_percentile: float = 90.0  # straggler = beyond this percentile...
    spec_factor: float = 2.0  # ...by at least this multiple
    spec_min_samples: int = 16  # warm-up before speculating
    # -- credit-based flow control
    backpressure: bool = False
    inbox_credits: int = 32  # max in-flight inbound messages per process
    # -- degraded-mode demotion
    demotion: bool = False
    demotion_interval: float = 250e-6  # health-check period
    demotion_factor: float = 2.0  # slow = this multiple of the median
    demotion_patience: int = 2  # consecutive unhealthy checks to demote
    demotion_max: int = 1  # demotion budget per run

    def __post_init__(self):
        if not (0.0 < self.srtt_gain < 1.0) or not (0.0 < self.rttvar_gain < 1.0):
            raise ReproError("estimator gains must be in (0, 1)")
        if self.rto_k <= 0:
            raise ReproError("rto_k must be positive")
        if self.min_rto <= 0:
            raise ReproError("min_rto must be positive")
        if not (0.0 < self.hedge_factor < 1.0):
            # At >= 1 the ack timer always beats the hedge timer and
            # the hedge can never fire.
            raise ReproError("hedge_factor must be in (0, 1)")
        if not (0.0 < self.spec_percentile <= 100.0):
            raise ReproError("spec_percentile must be in (0, 100]")
        if self.spec_factor < 1.0:
            raise ReproError("spec_factor must be >= 1")
        if self.spec_min_samples < 1:
            raise ReproError("spec_min_samples must be >= 1")
        if self.inbox_credits < 1:
            raise ReproError("inbox_credits must be >= 1")
        if self.demotion_interval <= 0:
            raise ReproError("demotion_interval must be positive")
        if self.demotion_factor <= 1.0:
            raise ReproError("demotion_factor must be > 1")
        if self.demotion_patience < 1:
            raise ReproError("demotion_patience must be >= 1")
        if self.demotion_max < 0:
            raise ReproError("demotion_max must be non-negative")

    def any_enabled(self) -> bool:
        return (
            self.adaptive_rto
            or self.hedging
            or self.speculation
            or self.backpressure
            or self.demotion
        )

    def validate_programs(self, programs: Sequence) -> None:
        """Demotion replays migrated programs from checkpoints, so
        (exactly like crash failover) it needs idempotent input
        handling on every program."""
        if not self.demotion:
            return
        for prog in programs:
            if not getattr(prog, "resilient_input", False):
                raise ReproError(
                    "degraded-mode demotion replays streams from "
                    "checkpoints and requires resilient programs "
                    "(build the solver with resilient=True)"
                )

    @classmethod
    def all_on(cls, **overrides) -> "AdaptiveConfig":
        """Every adaptive feature enabled (the chaos-campaign preset)."""
        on = dict(adaptive_rto=True, hedging=True, speculation=True,
                  backpressure=True, demotion=True)
        on.update(overrides)
        return cls(**on)


@dataclass(frozen=True)
class MembershipConfig:
    """Elastic membership: heartbeat failure detection, incarnation
    fencing, and rank restart/rejoin (DESIGN.md §14).  Off by default.

    With ``heartbeat_interval > 0`` the recovery layer probes every
    process each interval on the control plane and replaces the
    ``RecoveryConfig.detection_delay`` oracle: a crash is *discovered*
    only when the victim's probe replies stop arriving.  The suspicion
    timeout adapts per process through the transport's Jacobson/Karn
    :class:`~repro.runtime.transport.RttEstimator` -
    ``clamp(SRTT + suspicion_k * RTTVAR, min_timeout, max_timeout)``
    plus one heartbeat period of tick slack - so persistently slow
    ranks raise their own bar instead of flapping.

    False suspicion is safe by construction: a suspected proc is
    *fenced* (incarnation pre-bumped, patches drained through the
    failover path) but keeps routing; when its probes come back
    healthy ``rejoin_probes`` times in a row it rejoins with the new
    incarnation and pulls up to ``rebalance_budget`` patches back.
    Demoted procs re-promote through the same healthy-probe streak.

    Every probe reply costs ``probe_cost`` virtual seconds on the
    probed rank (scaled by active straggler windows), which is what
    makes a hard straggler's replies late enough to suspect.

    All detection inputs are observed behavior (probe reply arrival
    times), never the fault plan; all machinery is event-free and
    draw-free when off, so golden fingerprints are unchanged.
    """

    heartbeat_interval: float = 0.0  # probe period; 0 = membership off
    suspicion_k: float = 4.0  # timeout = SRTT + k * RTTVAR (clamped)
    min_timeout: float = 250e-6  # suspicion-timeout floor
    max_timeout: float = 5e-3  # suspicion-timeout cap
    probe_cost: float = 8e-6  # per-reply cost on the probed rank
    rejoin_probes: int = 2  # healthy-probe streak to rejoin/re-promote
    rebalance_budget: int = 8  # max patches pulled back per rejoin

    def __post_init__(self):
        if self.heartbeat_interval < 0:
            raise ReproError("heartbeat_interval must be non-negative")
        if not self.enabled:
            return
        if self.suspicion_k <= 0:
            raise ReproError("suspicion_k must be positive")
        if not (0 < self.min_timeout <= self.max_timeout):
            raise ReproError(
                "suspicion timeouts must satisfy 0 < min_timeout <= max_timeout"
            )
        if self.min_timeout <= self.heartbeat_interval:
            raise ReproError(
                "min_timeout must exceed heartbeat_interval: a suspicion "
                "bar below one probe period suspects every healthy rank"
            )
        if self.probe_cost < 0:
            raise ReproError("probe_cost must be non-negative")
        if self.rejoin_probes < 1:
            raise ReproError("rejoin_probes must be >= 1")
        if self.rebalance_budget < 0:
            raise ReproError("rebalance_budget must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.heartbeat_interval > 0

    @classmethod
    def all_on(cls, **overrides) -> "MembershipConfig":
        """Membership armed with campaign-friendly defaults."""
        on = dict(heartbeat_interval=60e-6)
        on.update(overrides)
        return cls(**on)


@dataclass(frozen=True)
class RecoveryConfig:
    """Parameters of the runtime's fault-tolerance machinery.

    All times are virtual seconds.  The virtual costs (``t_*``) are
    booked under the ``recovery`` breakdown category, so the overhead
    of resilience is visible in the Fig. 16-style accounting.

    ``watchdog_horizon`` arms the liveness watchdog: if retransmit
    timers are still circulating but no progress event has been
    processed for this many virtual seconds, the run raises a
    structured :class:`~repro.runtime.simulator.StallError` naming the
    blocked dependencies instead of spinning.  Must comfortably exceed
    any expected partition-heal window; 0 disables the watchdog.
    """

    ack_timeout: float = 120e-6  # first retransmission timeout
    backoff: float = 2.0  # timeout multiplier per retry
    max_rto: float = 10e-3  # hard cap on any (backed-off) timeout
    max_retries: int = 10  # per message; exceeded -> ReproError
    checkpoint_interval: float = 200e-6  # per-process checkpoint period
    detection_delay: float = 100e-6  # crash -> failover start
    t_checkpoint_fixed: float = 2.0e-6  # master cost per checkpoint event
    t_checkpoint_program: float = 0.5e-6  # + per program snapshotted
    t_failover_program: float = 5.0e-6  # master cost to install a migrant
    watchdog_horizon: float = 20e-3  # no-progress stall horizon; 0 = off
    adaptive: AdaptiveConfig | None = None  # opt-in adaptive features
    membership: MembershipConfig | None = None  # elastic membership (§14)

    def __post_init__(self):
        if self.ack_timeout <= 0 or self.checkpoint_interval <= 0:
            raise ReproError("timeouts and intervals must be positive")
        if self.backoff < 1.0:
            raise ReproError("backoff must be >= 1")
        if self.max_rto < self.ack_timeout:
            raise ReproError(
                "max_rto must be >= ack_timeout (the cap bounds backoff "
                "escalation, it cannot undercut the first timeout)"
            )
        if self.adaptive is not None and self.adaptive.adaptive_rto \
                and self.adaptive.min_rto > self.max_rto:
            raise ReproError("adaptive min_rto must not exceed max_rto")
        if self.max_retries < 1:
            raise ReproError("max_retries must be >= 1")
        if self.detection_delay < 0:
            raise ReproError("detection_delay must be non-negative")
        if self.watchdog_horizon < 0:
            raise ReproError("watchdog_horizon must be non-negative")
        m = self.membership
        if m is not None and m.enabled and self.watchdog_horizon > 0 \
                and self.watchdog_horizon <= m.max_timeout:
            raise ReproError(
                "watchdog_horizon must exceed the membership "
                "max_timeout: heartbeat detection needs room to fire "
                "before the run is declared stalled"
            )


def arm_recovery(
    faults: FaultPlan | None,
    recovery: RecoveryConfig | None,
    adaptive: AdaptiveConfig | None,
) -> RecoveryConfig | None:
    """Resolve the effective recovery configuration of a run.

    Recovery is armed explicitly, or whenever the fault plan can lose
    work (a straggler-only plan needs none), or whenever adaptive
    features are requested - they ride on the reliable-delivery stack.
    A supplied ``adaptive`` config is merged into the recovery config
    (re-validating the pair).
    """
    if recovery is None and faults is not None and faults.needs_recovery():
        recovery = RecoveryConfig()
    if adaptive is not None:
        recovery = (
            RecoveryConfig(adaptive=adaptive) if recovery is None
            else dataclasses.replace(recovery, adaptive=adaptive)
        )
    return recovery

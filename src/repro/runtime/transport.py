"""Message transport: wire times and reliable delivery (S20).

The message plane between simulated processes.  On reliable-delivery
runs (a :class:`~repro.runtime.faults.RecoveryConfig` is armed) every
remote stream is stamped with a unique ``(src program, seq)`` id,
acknowledged on arrival, and retransmitted with exponential backoff
until acked; receivers discard already-seen ids, so drops, duplicates
and retries are invisible to programs.  Without a recovery config the
transport degenerates to plain wire time (latency + size/bandwidth) on
a lossless network.

The fault-injection hook lives on this layer's send path: each
(re)transmission asks the :class:`~repro.runtime.faults.FaultInjector`
for the message's fate (deliver / drop / duplicate), and each arrival
ack may itself be dropped.

Sits above :mod:`repro.runtime.simulator` (events, timers) and
:mod:`repro.runtime.router` (current owner of source and destination
programs; crashed-process checks).  It knows nothing about scheduling
or checkpoint policy - failover hands it the checkpointed un-acked
sends to re-arm, as data.
"""

from __future__ import annotations

from .._util import ReproError
from ..core.stream import ProgramId, Stream
from .cluster import Layout, Machine
from .faults import FaultInjector, RecoveryConfig
from .metrics import RunReport
from .router import Router
from .simulator import Simulator

__all__ = ["PendingSend", "Transport"]


class PendingSend:
    """Ack/retransmit bookkeeping of one un-acked remote stream."""

    __slots__ = ("stream", "src_pid", "retries", "timeout", "attempt")

    def __init__(self, stream: Stream, src_pid: ProgramId, timeout: float):
        self.stream = stream
        self.src_pid = src_pid
        self.retries = 0
        self.timeout = timeout
        self.attempt = 0  # bumped on every (re)arm; lazily cancels timers


class Transport:
    """Inter-process message plane, optionally with reliable delivery."""

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        machine: Machine,
        layout: Layout,
        report: RunReport,
        injector: FaultInjector | None = None,
        rcfg: RecoveryConfig | None = None,
    ):
        self.sim = sim
        self.router = router
        self.machine = machine
        self.layout = layout
        self.report = report
        self.inj = injector
        self.rcfg = rcfg
        self.out_seq: dict[ProgramId, int] = {}  # next seq per sending program
        self.pending: dict[tuple, PendingSend] = {}  # uid -> un-acked send
        self.seen: set[tuple] = set()  # uids already delivered (dup discard)

    @property
    def reliable(self) -> bool:
        return self.rcfg is not None

    # -- send path ----------------------------------------------------------------

    def send(self, s: Stream, src_pid: ProgramId, ep: int, now: float,
             src_proc: int, dst_proc: int) -> None:
        """Put one remote stream on the wire (tracked until acked when
        reliable delivery is armed)."""
        self.report.messages += 1
        self.report.message_bytes += s.nbytes
        if self.rcfg is None:
            wire = self.machine.message_time(
                src_proc, dst_proc, s.nbytes, self.layout
            )
            self.sim.push(now + wire, "msg_arrive", (dst_proc, s))
            return
        # Stamp a unique message id and track the send until the
        # receiver acknowledges it.
        s.seq = self.out_seq.get(s.src, 0)
        self.out_seq[s.src] = s.seq + 1
        s.epoch = ep
        ps = PendingSend(s, src_pid, self.rcfg.ack_timeout)
        self.pending[s.uid] = ps
        self.transmit(ps, now)
        self.sim.push(now + ps.timeout, "timer", (s.uid, 0))

    def transmit(self, ps: PendingSend, now: float) -> None:
        """Put one (re)transmission of an un-acked stream on the wire."""
        s = ps.stream
        src_p = self.router.proc_of[s.src]
        dst_p = self.router.proc_of[s.dst]
        wire = self.machine.message_time(src_p, dst_p, s.nbytes, self.layout)
        fate = self.inj.message_fate() if self.inj is not None else "deliver"
        if fate == "drop":
            self.report.drops += 1
            return
        self.sim.push(now + wire, "msg_arrive", (dst_p, s))
        if fate == "duplicate":
            self.report.duplicates += 1
            self.sim.push(now + 2 * wire, "msg_arrive", (dst_p, s))

    # -- control-plane events ------------------------------------------------------

    def on_ack(self, uid: tuple) -> None:
        self.pending.pop(uid, None)

    def on_timer(self, data: tuple, now: float) -> None:
        """Ack-timeout expiry: retransmit with backoff, or hold/skip."""
        uid, attempt = data
        ps = self.pending.get(uid)
        if ps is None or ps.attempt != attempt:
            return  # acked or superseded: lazily cancelled
        self.report.timeouts += 1
        s = ps.stream
        if self.router.proc_of[s.src] in self.router.dead:
            return  # sender's owner crashed; failover re-arms
        if self.router.proc_of[s.dst] in self.router.dead:
            # Destination is down: hold the message (without burning
            # retries) until failover re-routes it.
            ps.attempt += 1
            self.sim.push(now + ps.timeout, "timer", (uid, ps.attempt))
            return
        if ps.retries >= self.rcfg.max_retries:
            raise ReproError(
                f"message {uid!r} undeliverable after "
                f"{self.rcfg.max_retries} retries"
            )
        ps.retries += 1
        ps.attempt += 1
        self.report.retries += 1
        self.transmit(ps, now)
        ps.timeout *= self.rcfg.backoff
        self.sim.push(now + ps.timeout, "timer", (uid, ps.attempt))

    # -- receive path --------------------------------------------------------------

    def receive(self, s: Stream, proc: int, now: float) -> bool:
        """Ack an arriving stream; False when it is a duplicate.

        Acks on arrival (a cheap control message to the sender's
        current owner), then discards duplicates: retransmissions and
        injected copies re-ack but are invisible to the program.
        """
        uid = s.uid
        if uid is None:
            return True
        if self.inj is None or not self.inj.ack_dropped():
            ack_t = self.machine.control_time(
                proc, self.router.proc_of[s.src], self.layout
            )
            self.sim.push(now + ack_t, "ack", uid)
        if uid in self.seen:
            return False
        self.seen.add(uid)
        return True

    # -- checkpoint/failover support -----------------------------------------------

    def pending_of(self, pid: ProgramId) -> dict[tuple, Stream]:
        """This program's un-acked sends (snapshotted into checkpoints)."""
        return {
            uid: ps.stream
            for uid, ps in self.pending.items()
            if ps.src_pid == pid
        }

    def rearm_after_failover(self, moved: set, ckpt: dict, now: float) -> None:
        """Re-arm the migrated programs' un-acked sends.

        Snapshot-time sends are retransmitted verbatim (same uid, so a
        late original copy is discarded by the receiver); sends made
        after the snapshot are dropped - the replayed execution
        regenerates them under fresh uids, and receivers dedupe their
        content at edge granularity.
        """
        for uid in list(self.pending):
            ps = self.pending[uid]
            if ps.src_pid not in moved:
                continue
            ck = ckpt[ps.src_pid]
            if ck is None or uid not in ck.pending:
                del self.pending[uid]
            else:
                ps.retries = 0
                ps.timeout = self.rcfg.ack_timeout
                ps.attempt += 1
                self.transmit(ps, now)
                self.sim.push(now + ps.timeout, "timer", (uid, ps.attempt))

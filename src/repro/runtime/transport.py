"""Message transport: wire times and reliable delivery (S20).

The message plane between simulated processes.  On reliable-delivery
runs (a :class:`~repro.runtime.faults.RecoveryConfig` is armed) every
remote stream is stamped with a unique ``(src program, seq)`` id,
acknowledged on arrival, and retransmitted with exponential backoff
until acked; receivers discard already-seen ids, so drops, duplicates
and retries are invisible to programs.  Without a recovery config the
transport degenerates to plain wire time (latency + size/bandwidth) on
a lossless network.

The fault-injection hook lives on this layer's send path: each
(re)transmission first checks the directed link for an active
partition (black-holed silently - only the ack timer recovers, once
the partition heals), then asks the
:class:`~repro.runtime.faults.FaultInjector` for the message's fate
(deliver / drop / duplicate / corrupt), and each arrival ack may
itself be dropped or black-holed.

Reliable sends carry an end-to-end CRC32 over header and payload;
a receiver that recomputes a mismatching checksum NACKs the message
instead of acking it, and the sender retransmits immediately (fast
retransmit, not burning the retry budget - corruption is transient,
unlike an unreachable peer).

The transport also owns the liveness watchdog's diagnosis: its pending
set *is* the run's wait-for state, so :meth:`Transport.stall_snapshot`
renders it as a :class:`~repro.runtime.simulator.StallReport` naming
every blocked dependency, the lost ones, and any wait-for cycle.

Adaptive extensions (opt-in via :class:`~repro.runtime.faults.
AdaptiveConfig`, all rng-neutral when off):

* **per-link RTT estimation** - every clean ack (never a retransmitted
  or hedged message: Karn's rule) feeds a Jacobson SRTT/RTTVAR
  estimator for its ``(src proc, dst proc)`` link, and new sends arm
  ``clamp(SRTT + k*RTTVAR, min_rto, max_rto)`` instead of the fixed
  ``ack_timeout``;
* **hedged retransmits** - a message still unacked after a fraction of
  its RTO gets one speculative extra copy (receiver dedup makes it
  invisible; tail latency is cut without waiting for the full timer);
* **credit-based flow control** - each destination process grants
  ``inbox_credits`` in-flight inbound messages; a send finding the
  window full parks until an arrival frees a credit, and the stall
  time is booked under the ``backpressure`` breakdown category;
* **forwarding** - an in-flight message that arrives at a process
  which no longer owns the destination program (an ownership move by
  degraded-mode demotion raced the wire) is forwarded to the current
  owner instead of being mis-delivered; the ack travels only from the
  final arrival.

Whether fixed or adaptive, a retransmit timeout never escalates past
``RecoveryConfig.max_rto``: unbounded exponential backoff would let a
long partition push a single timer past the watchdog horizon.

Sits above :mod:`repro.runtime.simulator` (events, timers) and
:mod:`repro.runtime.router` (current owner of source and destination
programs; crashed-process checks).  It knows nothing about scheduling
or checkpoint policy - failover hands it the checkpointed un-acked
sends to re-arm, as data.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import TYPE_CHECKING

import numpy as np

from .._util import ReproError
from ..core.stream import ProgramId, Stream
from .cluster import Layout, Machine
from .faults import FaultInjector, RecoveryConfig
from .metrics import RunReport
from .router import Router
from .simulator import Simulator, StallReport, WaitEdge

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .sanitizer import InvariantSanitizer

__all__ = ["PendingSend", "RttEstimator", "Transport", "stream_checksum"]


def stream_checksum(s: Stream) -> int:
    """End-to-end CRC32 of one stream: header fields plus payload bytes.

    ndarray payloads hash their raw bytes (so an in-flight bit flip is
    always caught); opaque payloads hash their repr, which is stable
    within a run.
    """
    crc = zlib.crc32(
        repr((s.src, s.dst, s.seq, s.epoch, s.items, s.nbytes)).encode()
    )
    p = s.payload
    if isinstance(p, np.ndarray):
        crc = zlib.crc32(np.ascontiguousarray(p).tobytes(), crc)
    elif isinstance(p, (bytes, bytearray)):
        crc = zlib.crc32(bytes(p), crc)
    elif p is not None:
        crc = zlib.crc32(repr(p).encode(), crc)
    return crc


class RttEstimator:
    """Jacobson SRTT/RTTVAR estimator for one directed proc link.

    RFC 6298 shape: the first sample seeds ``SRTT = R, RTTVAR = R/2``;
    subsequent samples blend with gains ``srtt_gain`` (alpha) and
    ``rttvar_gain`` (beta).  Karn's rule is enforced by the *caller*:
    only acks of never-retransmitted, never-hedged messages may be
    sampled, since an ack of an ambiguous send cannot be matched to a
    transmission.
    """

    __slots__ = ("srtt", "rttvar", "samples")

    def __init__(self):
        self.srtt: float | None = None
        self.rttvar = 0.0
        self.samples = 0

    def sample(self, r: float, srtt_gain: float, rttvar_gain: float) -> None:
        if r < 0:
            raise ReproError("negative RTT sample")
        if self.srtt is None:
            self.srtt = r
            self.rttvar = r / 2.0
        else:
            self.rttvar = (
                (1.0 - rttvar_gain) * self.rttvar
                + rttvar_gain * abs(self.srtt - r)
            )
            self.srtt = (1.0 - srtt_gain) * self.srtt + srtt_gain * r
        self.samples += 1

    def rto(self, k: float, min_rto: float, max_rto: float) -> float:
        """``clamp(SRTT + k * RTTVAR, min_rto, max_rto)``."""
        if self.srtt is None:
            raise ReproError("RTO requested before any RTT sample")
        return min(max(self.srtt + k * self.rttvar, min_rto), max_rto)


class PendingSend:
    """Ack/retransmit bookkeeping of one un-acked remote stream."""

    __slots__ = (
        "stream", "src_pid", "retries", "timeout", "attempt",
        "sent_at", "link", "hedged", "parked",
    )

    def __init__(self, stream: Stream, src_pid: ProgramId, timeout: float):
        self.stream = stream
        self.src_pid = src_pid
        self.retries = 0
        self.timeout = timeout
        self.attempt = 0  # bumped on every (re)arm; lazily cancels timers
        self.sent_at: float | None = None  # first-copy launch time (RTT)
        self.link: tuple[int, int] | None = None  # (src proc, dst proc)
        self.hedged = False  # a speculative extra copy went out (Karn)
        self.parked: float | None = None  # backpressure park time, if parked


class Transport:
    """Inter-process message plane, optionally with reliable delivery."""

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        machine: Machine,
        layout: Layout,
        report: RunReport,
        injector: FaultInjector | None = None,
        rcfg: RecoveryConfig | None = None,
        sanitizer: InvariantSanitizer | None = None,
    ) -> None:
        self.sim = sim
        self.router = router
        self.machine = machine
        self.layout = layout
        self.report = report
        self.inj = injector
        self.rcfg = rcfg
        self.san = sanitizer
        self.acfg = rcfg.adaptive if rcfg is not None else None
        # Elastic membership (DESIGN.md §14): when armed, every
        # reliable send is tagged (sender proc, incarnation) and
        # receivers fence traffic from a previous life.
        m = rcfg.membership if rcfg is not None else None
        self.mcfg = m if m is not None and m.enabled else None
        # Next seq per sending program, keyed by the router's interned
        # program index (minted at route-table build) - a flat array
        # instead of a ProgramId-keyed dict on the reliable send path.
        self.out_seq: list[int] = [0] * len(router.pids)
        # Per-copy wire ids for the happens-before trace.  Deliberately
        # NOT the simulator's tie-break sequence: allocating sim seqs
        # here would shift event ordering and break golden fingerprints.
        self._wire_seq = 0
        # Hot-path tables: node id per process (so clean-path wire time
        # is two list reads + one divide, no method dispatch) and the
        # interned event-kind ids this layer pushes.
        self._node = [machine.node_of(p, layout) for p in range(layout.nprocs)]
        self._lat_intra = machine.latency_intra
        self._lat_inter = machine.latency_inter
        self._bandwidth = machine.bandwidth
        self._k_msg_arrive = sim.kind_id("msg_arrive")
        self._k_ack = sim.kind_id("ack")
        self._k_nack = sim.kind_id("nack")
        self._k_timer = sim.kind_id("timer")
        self.pending: dict[tuple, PendingSend] = {}  # uid -> un-acked send
        self.seen: set[tuple] = set()  # uids already delivered (dup discard)
        self.rtt: dict[tuple[int, int], RttEstimator] = {}  # per link
        # Credit-based flow control state (only touched when armed):
        self._credit_used: dict[int, int] = {}  # dst proc -> in-flight count
        self._charged: dict[tuple, int] = {}  # uid -> dst proc holding credit
        self._parked: list[tuple] = []  # FIFO of uids awaiting a credit

    @property
    def reliable(self) -> bool:
        return self.rcfg is not None

    def _initial_rto(self, src_proc: int, dst_proc: int) -> float:
        """First-arm timeout of a fresh send: the link's estimated RTO
        when adaptive and warmed up, the fixed ``ack_timeout`` otherwise
        (``max_rto`` caps both; config validation guarantees
        ``ack_timeout <= max_rto``)."""
        a = self.acfg
        if a is not None and a.adaptive_rto:
            est = self.rtt.get((src_proc, dst_proc))
            if est is not None and est.srtt is not None:
                return est.rto(a.rto_k, a.min_rto, self.rcfg.max_rto)
        return self.rcfg.ack_timeout

    # -- send path ----------------------------------------------------------------

    def _wire_push(self, now: float, arrive: float, src_proc: int,
                   dst_proc: int, s: Stream) -> None:
        """Schedule one physical ``msg_arrive`` copy.

        Every copy that goes on the wire - first transmission,
        retransmit, hedge, duplicate, corrupt clone, forward hop -
        passes through here, gets a transport-local wire id, and (when
        tracing) emits the ``hb_send`` record that lets the
        happens-before checker pair it with its arrival.
        """
        self._wire_seq += 1
        if self.sim.note_hook is not None:
            self.sim.note(now, "hb_send", (
                self._wire_seq, src_proc, dst_proc,
                str(s.uid) if s.uid is not None else None,
            ))
        self.sim.push_id(arrive, self._k_msg_arrive, (dst_proc, s, self._wire_seq))

    def send(self, s: Stream, src_pid: ProgramId, ep: int, now: float,
             src_proc: int, dst_proc: int) -> None:
        """Put one remote stream on the wire (tracked until acked when
        reliable delivery is armed)."""
        self.report.messages += 1
        self.report.message_bytes += s.nbytes
        if self.rcfg is None:
            # Inlined Machine.message_time over the precomputed node
            # table: same latency pick, same division, bitwise-equal.
            node = self._node
            lat = (
                self._lat_intra
                if node[src_proc] == node[dst_proc]
                else self._lat_inter
            )
            wire = lat + s.nbytes / self._bandwidth
            self._wire_push(now, now + wire, src_proc, dst_proc, s)
            return
        # Stamp a unique message id and the end-to-end checksum, and
        # track the send until the receiver acknowledges it.
        idx = self.router.index_of[s.src]
        s.seq = self.out_seq[idx]
        self.out_seq[idx] = s.seq + 1
        s.epoch = ep
        if self.mcfg is not None:
            s.inc = (src_proc, self.router.inc[src_proc])
        s.checksum = stream_checksum(s)
        ps = PendingSend(s, src_pid, self._initial_rto(src_proc, dst_proc))
        ps.link = (src_proc, dst_proc)
        self.pending[s.uid] = ps
        a = self.acfg
        if (
            a is not None
            and a.backpressure
            and self._credit_used.get(dst_proc, 0) >= a.inbox_credits
        ):
            # Destination inbox window full: park until an arrival over
            # there frees a credit.  No timer is armed while parked -
            # the message is not on the wire yet.
            ps.parked = now
            self._parked.append(s.uid)
            self.report.backpressure_stalls += 1
            return
        self._launch(ps, now)

    def _launch(self, ps: PendingSend, now: float) -> None:
        """First transmission of a tracked send: charge the flow-control
        credit, stamp the RTT clock, arm the ack timer and (optionally)
        the hedge timer."""
        s = ps.stream
        a = self.acfg
        if a is not None and a.backpressure:
            dst_proc = self.router.proc_of[s.dst]
            self._charged[s.uid] = dst_proc
            self._credit_used[dst_proc] = (
                self._credit_used.get(dst_proc, 0) + 1
            )
        ps.sent_at = now
        self.transmit(ps, now)
        self.sim.push_id(now + ps.timeout, self._k_timer, (s.uid, ps.attempt))
        if a is not None and a.hedging:
            self.sim.push(
                now + a.hedge_factor * ps.timeout,
                "hedge", (s.uid, ps.attempt),
            )

    def transmit(self, ps: PendingSend, now: float) -> None:
        """Put one (re)transmission of an un-acked stream on the wire."""
        s = ps.stream
        src_p = self.router.proc_of[s.src]
        dst_p = self.router.proc_of[s.dst]
        if self.inj is not None and self.inj.link_cut(src_p, dst_p, now):
            # Partitioned link: silent black hole, no fate draw.  The
            # sender learns nothing; its ack timer retransmits until
            # the partition heals (or the watchdog names the cut).
            self.report.partition_drops += 1
            return
        wire = self.machine.message_time(src_p, dst_p, s.nbytes, self.layout)
        fate = self.inj.message_fate() if self.inj is not None else "deliver"
        if fate == "drop":
            self.report.drops += 1
            return
        if fate == "corrupt":
            self.report.corruptions += 1
            self._wire_push(
                now, now + wire, src_p, dst_p, self._corrupt_clone(s)
            )
            return
        self._wire_push(now, now + wire, src_p, dst_p, s)
        if fate == "duplicate":
            self.report.duplicates += 1
            self._wire_push(now, now + 2 * wire, src_p, dst_p, s)

    def _corrupt_clone(self, s: Stream) -> Stream:
        """A copy of ``s`` with one seeded in-flight bit flipped.

        The clone carries the *original* checksum, so the receiver's
        recomputation genuinely mismatches.  ndarray payloads get the
        flip in their byte image; opaque payloads model the flip as
        hitting the checksum word itself (same observable: mismatch).
        The tracked :class:`PendingSend` keeps the pristine stream, so
        retransmissions are clean.
        """
        byte, bit = self.inj.corrupt_position(
            s.payload.nbytes if isinstance(s.payload, np.ndarray) else 4
        )
        p = s.payload
        if isinstance(p, np.ndarray) and p.nbytes > 0:
            buf = bytearray(np.ascontiguousarray(p).tobytes())
            buf[byte] ^= 1 << bit
            bad = np.frombuffer(bytes(buf), dtype=p.dtype).reshape(p.shape)
            return dataclasses.replace(s, payload=bad)
        return dataclasses.replace(
            s, checksum=s.checksum ^ (1 << ((byte * 8 + bit) % 32))
        )

    # -- control-plane events ------------------------------------------------------

    def on_ack(self, uid: tuple, now: float) -> None:
        ps = self.pending.pop(uid, None)
        if ps is None:
            return
        a = self.acfg
        if (
            a is not None
            and a.adaptive_rto
            and ps.retries == 0
            and not ps.hedged
            and ps.sent_at is not None
            and ps.link is not None
        ):
            # Karn's rule: only a message that was transmitted exactly
            # once yields an unambiguous RTT sample.  Retransmitted or
            # hedged sends have two copies in flight - the ack cannot
            # be matched to either, so they never feed the estimator.
            est = self.rtt.get(ps.link)
            if est is None:
                est = self.rtt[ps.link] = RttEstimator()
            est.sample(now - ps.sent_at, a.srtt_gain, a.rttvar_gain)
            self.report.rtt_samples += 1

    def on_hedge(self, data: tuple, now: float) -> None:
        """Hedge-timer expiry: if the send is still unacked and still on
        its first attempt, launch one speculative extra copy.

        The receiver's uid dedup makes the copy invisible; the only
        cost is wire traffic.  A hedged send is marked so its eventual
        ack is excluded from RTT sampling (Karn's rule) and never
        hedged again.
        """
        uid, attempt = data
        ps = self.pending.get(uid)
        if (
            ps is None or ps.attempt != attempt
            or ps.retries > 0 or ps.hedged or ps.parked is not None
        ):
            return  # acked, retransmitted, re-armed or parked meanwhile
        s = ps.stream
        if (
            self.router.proc_of[s.src] in self.router.dead
            or self.router.proc_of[s.dst] in self.router.dead
        ):
            return  # failover machinery owns this message now
        ps.hedged = True
        self.report.hedged_sends += 1
        self.transmit(ps, now)

    def on_timer(self, data: tuple, now: float) -> None:
        """Ack-timeout expiry: retransmit with backoff, or hold/skip."""
        uid, attempt = data
        ps = self.pending.get(uid)
        if ps is None or ps.attempt != attempt:
            return  # acked or superseded: lazily cancelled
        self.report.timeouts += 1
        s = ps.stream
        if self.router.proc_of[s.src] in self.router.dead:
            return  # sender's owner crashed; failover re-arms
        if self.router.proc_of[s.dst] in self.router.dead:
            # Destination is down: hold the message (without burning
            # retries) until failover re-routes it.
            ps.attempt += 1
            self.sim.push_id(now + ps.timeout, self._k_timer, (uid, ps.attempt))
            return
        if ps.retries >= self.rcfg.max_retries:
            raise ReproError(
                f"message {uid!r} undeliverable after "
                f"{self.rcfg.max_retries} retries"
            )
        ps.retries += 1
        ps.attempt += 1
        self.report.retries += 1
        self.transmit(ps, now)
        # Exponential backoff, capped: an uncapped doubling under a
        # long partition would arm a timer beyond the watchdog horizon
        # and the run would be declared stalled instead of recovering.
        ps.timeout = min(ps.timeout * self.rcfg.backoff, self.rcfg.max_rto)
        self.sim.push_id(now + ps.timeout, self._k_timer, (uid, ps.attempt))

    def on_nack(self, uid: tuple, now: float) -> None:
        """Checksum-mismatch report from the receiver: retransmit
        immediately (fast retransmit).

        Corruption is a transient wire fault, not an unreachable peer,
        so a NACKed retransmission does not burn the retry budget; the
        ack timer stays armed as the backstop for a lost NACK.
        """
        ps = self.pending.get(uid)
        if ps is None:
            return  # a clean copy got through and was acked meanwhile
        s = ps.stream
        if self.router.proc_of[s.src] in self.router.dead:
            return  # sender's owner crashed; failover re-arms
        ps.attempt += 1
        self.transmit(ps, now)
        self.sim.push_id(now + ps.timeout, self._k_timer, (uid, ps.attempt))

    # -- receive path --------------------------------------------------------------

    def _note_recv(self, now: float, wid: int | None, proc: int,
                   delivered: bool, uid: tuple | None) -> None:
        """Emit the ``hb_recv`` record for one processed arrival.

        ``delivered`` marks app-level delivery (the exactly-once axis);
        the checker draws the causal edge from any paired send, since
        even a discarded copy was physically read by ``proc``.
        """
        if self.sim.note_hook is not None and wid is not None:
            self.sim.note(now, "hb_recv", (
                wid, proc, delivered,
                str(uid) if uid is not None else None,
            ))

    def receive(
        self, s: Stream, proc: int, now: float, wid: int | None = None
    ) -> bool:
        """Verify, ack and dedup an arriving stream; False when it must
        not be delivered (corrupted copy or duplicate).

        A checksum mismatch NACKs the sender instead of acking (the
        corrupted copy is never marked seen, so the clean retransmit is
        delivered normally); otherwise acks on arrival (a cheap control
        message to the sender's current owner), then discards
        duplicates: retransmissions and injected copies re-ack but are
        invisible to the program.  ``wid`` is the arriving copy's wire
        id (from the ``msg_arrive`` event), echoed on the ``hb_recv``
        trace record.
        """
        uid = s.uid
        if uid is None:
            self._note_recv(now, wid, proc, True, None)
            return True
        src_proc = self.router.proc_of[s.src]
        if s.checksum is not None and stream_checksum(s) != s.checksum:
            self.report.nacks += 1
            self._note_recv(now, wid, proc, False, uid)
            if self.inj is not None and self.inj.link_cut(proc, src_proc, now):
                self.report.partition_drops += 1  # NACK black-holed too
            else:
                t = self.machine.control_time(proc, src_proc, self.layout)
                self.sim.push_id(now + t, self._k_nack, uid)
            return False
        # A verified arrival frees its flow-control credit (dups and
        # forwarded hops release at most once: the charge map pops).
        if self._charged:
            dst_proc = self._charged.pop(uid, None)
            if dst_proc is not None:
                self._credit_used[dst_proc] -= 1
                self._drain_parked(now)
        # Incarnation fence: traffic stamped by a previous life of the
        # sending process is stale - its send was either dropped at
        # failover or re-armed under the live incarnation, so this copy
        # is rejected silently (no ack, never marked seen).
        if self.mcfg is not None and s.inc is not None \
                and s.inc[1] < self.router.inc[s.inc[0]]:
            self.report.fenced_messages += 1
            self._note_recv(now, wid, proc, False, uid)
            return False
        owner = self.router.proc_of[s.dst]
        if owner != proc and uid not in self.seen:
            # Ownership moved while the message was in flight (a
            # degraded-mode demotion raced the wire): forward to the
            # current owner and stay silent - the ack travels only from
            # the final arrival, so the sender keeps retrying until the
            # stream truly lands.
            self._note_recv(now, wid, proc, False, uid)
            if owner not in self.router.dead:
                self.report.forwards += 1
                wire = self.machine.message_time(
                    proc, owner, s.nbytes, self.layout
                )
                self._wire_push(now, now + wire, proc, owner, s)
            return False
        if self.inj is not None and self.inj.link_cut(proc, src_proc, now):
            self.report.partition_drops += 1  # ack black-holed by the cut
        elif self.inj is None or not self.inj.ack_dropped():
            ack_t = self.machine.control_time(proc, src_proc, self.layout)
            self.sim.push_id(now + ack_t, self._k_ack, uid)
        if uid in self.seen:
            self._note_recv(now, wid, proc, False, uid)
            return False
        if self.san is not None:
            self.san.on_delivery(s, proc)
        self.seen.add(uid)
        self._note_recv(now, wid, proc, True, uid)
        return True

    def _drain_parked(self, now: float) -> None:
        """Launch parked sends, oldest first, while credits allow.

        The stall (park duration) is booked under the dynamic
        ``backpressure`` breakdown category against the sender's
        network plane, so flow control shows up in the Fig. 16 stack
        instead of silently inflating idle time.
        """
        if not self._parked:
            return
        still: list[tuple] = []
        for uid in self._parked:
            ps = self.pending.get(uid)
            if ps is None or ps.parked is None:
                continue  # dropped at failover, or already launched
            dst_proc = self.router.proc_of[ps.stream.dst]
            if self._credit_used.get(dst_proc, 0) >= self.acfg.inbox_credits:
                still.append(uid)
                continue
            stalled = now - ps.parked
            if stalled > 0 and ps.link is not None:
                self.report.breakdown.add(
                    ("net", ps.link[0]), "backpressure", stalled
                )
            ps.parked = None
            self._launch(ps, now)
        self._parked = still

    # -- checkpoint/failover support -----------------------------------------------

    def pending_of(self, pid: ProgramId) -> dict[tuple, Stream]:
        """This program's un-acked sends (snapshotted into checkpoints)."""
        return {
            uid: ps.stream
            for uid, ps in self.pending.items()
            if ps.src_pid == pid
        }

    def rearm_after_failover(self, moved: set, ckpt: dict, now: float) -> None:
        """Re-arm the migrated programs' un-acked sends.

        Snapshot-time sends are retransmitted verbatim (same uid, so a
        late original copy is discarded by the receiver); sends made
        after the snapshot are dropped - the replayed execution
        regenerates them under fresh uids, and receivers dedupe their
        content at edge granularity.
        """
        for uid in list(self.pending):
            ps = self.pending[uid]
            if ps.src_pid not in moved:
                continue
            ck = ckpt[ps.src_pid]
            if ck is None or uid not in ck.pending:
                del self.pending[uid]
            else:
                s = ps.stream
                ps.retries = 0
                ps.timeout = self._initial_rto(
                    self.router.proc_of[s.src], self.router.proc_of[s.dst]
                )
                ps.attempt += 1
                ps.sent_at = None  # Karn: a re-armed send is ambiguous
                ps.parked = None  # failover overrides flow control
                if self.mcfg is not None:
                    # Restamp under the new owner's live incarnation:
                    # left stale, every retransmit would be fenced at
                    # the receiver and the retry budget would burn out.
                    sp = self.router.proc_of[s.src]
                    s.inc = (sp, self.router.inc[sp])
                self.transmit(ps, now)
                self.sim.push_id(now + ps.timeout, self._k_timer, (uid, ps.attempt))

    # -- durability (snapshot/restore) ---------------------------------------------

    def state_dict(self) -> dict:
        """Codec-ready reliable-delivery state.

        ``pending`` keeps its insertion order (``rearm_after_failover``
        iterates it), as does the parked FIFO; ``seen`` is
        membership-only and serialized sorted.  :class:`PendingSend`
        and :class:`RttEstimator` flatten to plain dicts/tuples and are
        reconstructed on load.
        """
        return {
            "out_seq": list(self.out_seq),
            "wire_seq": self._wire_seq,
            "pending": {
                uid: {
                    "stream": ps.stream,
                    "src_pid": ps.src_pid,
                    "retries": ps.retries,
                    "timeout": ps.timeout,
                    "attempt": ps.attempt,
                    "sent_at": ps.sent_at,
                    "link": ps.link,
                    "hedged": ps.hedged,
                    "parked": ps.parked,
                }
                for uid, ps in self.pending.items()
            },
            "seen": sorted(self.seen),
            "rtt": {
                link: (est.srtt, est.rttvar, est.samples)
                for link, est in self.rtt.items()
            },
            "credit_used": dict(self._credit_used),
            "charged": dict(self._charged),
            "parked": list(self._parked),
        }

    def load_state_dict(self, d: dict) -> None:
        self.out_seq = [int(x) for x in d["out_seq"]]
        self._wire_seq = d["wire_seq"]
        pending: dict[tuple, PendingSend] = {}
        for uid, pd in d["pending"].items():
            ps = PendingSend(pd["stream"], pd["src_pid"], pd["timeout"])
            ps.retries = pd["retries"]
            ps.attempt = pd["attempt"]
            ps.sent_at = pd["sent_at"]
            ps.link = pd["link"]
            ps.hedged = pd["hedged"]
            ps.parked = pd["parked"]
            pending[uid] = ps
        self.pending = pending
        self.seen = set(d["seen"])
        rtt: dict[tuple[int, int], RttEstimator] = {}
        for link, (srtt, rttvar, samples) in d["rtt"].items():
            est = RttEstimator()
            est.srtt = srtt
            est.rttvar = rttvar
            est.samples = samples
            rtt[link] = est
        self.rtt = rtt
        self._credit_used = dict(d["credit_used"])
        self._charged = dict(d["charged"])
        self._parked = list(d["parked"])

    # -- liveness diagnosis -------------------------------------------------------

    def stall_snapshot(self, t: float) -> StallReport | None:
        """Wait-for snapshot for the liveness watchdog.

        Called when retransmit timers keep circulating with no progress
        event processed for a full horizon.  Returns ``None`` when no
        sends are outstanding (stale timers; the heap will drain), else
        a :class:`StallReport` naming every blocked dependency - who is
        starved, who owes the stream, and why it cannot arrive
        (partitioned link, dead peer, or plain ack starvation) - plus
        any wait-for cycle among the blocked programs.
        """
        if not self.pending:
            return None
        router, inj = self.router, self.inj
        waiting: list[WaitEdge] = []
        lost: list[WaitEdge] = []
        holders: dict[str, set[str]] = {}  # waiter -> stream owers
        for ps in self.pending.values():
            s = ps.stream
            src_p = router.proc_of[s.src]
            dst_p = router.proc_of[s.dst]
            cut = (
                inj.cut_window(src_p, dst_p, t) if inj is not None else None
            )
            if ps.parked is not None:
                reason = (
                    f"parked by flow control (proc {dst_p} inbox "
                    f"credits exhausted)"
                )
            elif cut is not None:
                reason = f"link {src_p}->{dst_p} partitioned" + (
                    f" until t={cut.end:.6f}s" if cut.heals
                    else " (never heals)"
                )
            elif dst_p in router.dead:
                reason = f"receiver proc {dst_p} is dead"
            elif src_p in router.dead:
                reason = f"sender's owner proc {src_p} is dead"
            else:
                reason = "awaiting ack"
            edge = WaitEdge(
                waiter=str(s.dst), holder=str(s.src),
                src_proc=src_p, dst_proc=dst_p,
                retries=ps.retries, reason=reason,
            )
            waiting.append(edge)
            if cut is not None and not cut.heals:
                lost.append(edge)
            holders.setdefault(edge.waiter, set()).add(edge.holder)
        return StallReport(
            now=t,
            last_progress=self.sim.last_progress,
            horizon=self.rcfg.watchdog_horizon,
            pending_events=len(self.sim),
            waiting=tuple(waiting),
            lost=tuple(lost),
            cycle=_find_cycle(holders),
        )


def _find_cycle(edges: dict[str, set[str]]) -> tuple[str, ...]:
    """First directed cycle in a waiter->holders graph, or ()."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {v: WHITE for v in edges}
    stack: list[str] = []

    def dfs(v: str) -> tuple[str, ...]:
        color[v] = GRAY
        stack.append(v)
        for w in sorted(edges.get(v, ())):
            c = color.get(w, WHITE)
            if c == GRAY:
                return tuple(stack[stack.index(w):]) + (w,)
            if c == WHITE and w in edges:
                found = dfs(w)
                if found:
                    return found
        stack.pop()
        color[v] = BLACK
        return ()

    for v in sorted(edges):
        if color[v] == WHITE:
            found = dfs(v)
            if found:
                return found
    return ()

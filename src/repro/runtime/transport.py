"""Message transport: wire times and reliable delivery (S20).

The message plane between simulated processes.  On reliable-delivery
runs (a :class:`~repro.runtime.faults.RecoveryConfig` is armed) every
remote stream is stamped with a unique ``(src program, seq)`` id,
acknowledged on arrival, and retransmitted with exponential backoff
until acked; receivers discard already-seen ids, so drops, duplicates
and retries are invisible to programs.  Without a recovery config the
transport degenerates to plain wire time (latency + size/bandwidth) on
a lossless network.

The fault-injection hook lives on this layer's send path: each
(re)transmission first checks the directed link for an active
partition (black-holed silently - only the ack timer recovers, once
the partition heals), then asks the
:class:`~repro.runtime.faults.FaultInjector` for the message's fate
(deliver / drop / duplicate / corrupt), and each arrival ack may
itself be dropped or black-holed.

Reliable sends carry an end-to-end CRC32 over header and payload;
a receiver that recomputes a mismatching checksum NACKs the message
instead of acking it, and the sender retransmits immediately (fast
retransmit, not burning the retry budget - corruption is transient,
unlike an unreachable peer).

The transport also owns the liveness watchdog's diagnosis: its pending
set *is* the run's wait-for state, so :meth:`Transport.stall_snapshot`
renders it as a :class:`~repro.runtime.simulator.StallReport` naming
every blocked dependency, the lost ones, and any wait-for cycle.

Sits above :mod:`repro.runtime.simulator` (events, timers) and
:mod:`repro.runtime.router` (current owner of source and destination
programs; crashed-process checks).  It knows nothing about scheduling
or checkpoint policy - failover hands it the checkpointed un-acked
sends to re-arm, as data.
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from .._util import ReproError
from ..core.stream import ProgramId, Stream
from .cluster import Layout, Machine
from .faults import FaultInjector, RecoveryConfig
from .metrics import RunReport
from .router import Router
from .simulator import Simulator, StallReport, WaitEdge

__all__ = ["PendingSend", "Transport", "stream_checksum"]


def stream_checksum(s: Stream) -> int:
    """End-to-end CRC32 of one stream: header fields plus payload bytes.

    ndarray payloads hash their raw bytes (so an in-flight bit flip is
    always caught); opaque payloads hash their repr, which is stable
    within a run.
    """
    crc = zlib.crc32(
        repr((s.src, s.dst, s.seq, s.epoch, s.items, s.nbytes)).encode()
    )
    p = s.payload
    if isinstance(p, np.ndarray):
        crc = zlib.crc32(np.ascontiguousarray(p).tobytes(), crc)
    elif isinstance(p, (bytes, bytearray)):
        crc = zlib.crc32(bytes(p), crc)
    elif p is not None:
        crc = zlib.crc32(repr(p).encode(), crc)
    return crc


class PendingSend:
    """Ack/retransmit bookkeeping of one un-acked remote stream."""

    __slots__ = ("stream", "src_pid", "retries", "timeout", "attempt")

    def __init__(self, stream: Stream, src_pid: ProgramId, timeout: float):
        self.stream = stream
        self.src_pid = src_pid
        self.retries = 0
        self.timeout = timeout
        self.attempt = 0  # bumped on every (re)arm; lazily cancels timers


class Transport:
    """Inter-process message plane, optionally with reliable delivery."""

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        machine: Machine,
        layout: Layout,
        report: RunReport,
        injector: FaultInjector | None = None,
        rcfg: RecoveryConfig | None = None,
        sanitizer=None,
    ):
        self.sim = sim
        self.router = router
        self.machine = machine
        self.layout = layout
        self.report = report
        self.inj = injector
        self.rcfg = rcfg
        self.san = sanitizer
        self.out_seq: dict[ProgramId, int] = {}  # next seq per sending program
        self.pending: dict[tuple, PendingSend] = {}  # uid -> un-acked send
        self.seen: set[tuple] = set()  # uids already delivered (dup discard)

    @property
    def reliable(self) -> bool:
        return self.rcfg is not None

    # -- send path ----------------------------------------------------------------

    def send(self, s: Stream, src_pid: ProgramId, ep: int, now: float,
             src_proc: int, dst_proc: int) -> None:
        """Put one remote stream on the wire (tracked until acked when
        reliable delivery is armed)."""
        self.report.messages += 1
        self.report.message_bytes += s.nbytes
        if self.rcfg is None:
            wire = self.machine.message_time(
                src_proc, dst_proc, s.nbytes, self.layout
            )
            self.sim.push(now + wire, "msg_arrive", (dst_proc, s))
            return
        # Stamp a unique message id and the end-to-end checksum, and
        # track the send until the receiver acknowledges it.
        s.seq = self.out_seq.get(s.src, 0)
        self.out_seq[s.src] = s.seq + 1
        s.epoch = ep
        s.checksum = stream_checksum(s)
        ps = PendingSend(s, src_pid, self.rcfg.ack_timeout)
        self.pending[s.uid] = ps
        self.transmit(ps, now)
        self.sim.push(now + ps.timeout, "timer", (s.uid, 0))

    def transmit(self, ps: PendingSend, now: float) -> None:
        """Put one (re)transmission of an un-acked stream on the wire."""
        s = ps.stream
        src_p = self.router.proc_of[s.src]
        dst_p = self.router.proc_of[s.dst]
        if self.inj is not None and self.inj.link_cut(src_p, dst_p, now):
            # Partitioned link: silent black hole, no fate draw.  The
            # sender learns nothing; its ack timer retransmits until
            # the partition heals (or the watchdog names the cut).
            self.report.partition_drops += 1
            return
        wire = self.machine.message_time(src_p, dst_p, s.nbytes, self.layout)
        fate = self.inj.message_fate() if self.inj is not None else "deliver"
        if fate == "drop":
            self.report.drops += 1
            return
        if fate == "corrupt":
            self.report.corruptions += 1
            self.sim.push(
                now + wire, "msg_arrive", (dst_p, self._corrupt_clone(s))
            )
            return
        self.sim.push(now + wire, "msg_arrive", (dst_p, s))
        if fate == "duplicate":
            self.report.duplicates += 1
            self.sim.push(now + 2 * wire, "msg_arrive", (dst_p, s))

    def _corrupt_clone(self, s: Stream) -> Stream:
        """A copy of ``s`` with one seeded in-flight bit flipped.

        The clone carries the *original* checksum, so the receiver's
        recomputation genuinely mismatches.  ndarray payloads get the
        flip in their byte image; opaque payloads model the flip as
        hitting the checksum word itself (same observable: mismatch).
        The tracked :class:`PendingSend` keeps the pristine stream, so
        retransmissions are clean.
        """
        byte, bit = self.inj.corrupt_position(
            s.payload.nbytes if isinstance(s.payload, np.ndarray) else 4
        )
        p = s.payload
        if isinstance(p, np.ndarray) and p.nbytes > 0:
            buf = bytearray(np.ascontiguousarray(p).tobytes())
            buf[byte] ^= 1 << bit
            bad = np.frombuffer(bytes(buf), dtype=p.dtype).reshape(p.shape)
            return dataclasses.replace(s, payload=bad)
        return dataclasses.replace(
            s, checksum=s.checksum ^ (1 << ((byte * 8 + bit) % 32))
        )

    # -- control-plane events ------------------------------------------------------

    def on_ack(self, uid: tuple) -> None:
        self.pending.pop(uid, None)

    def on_timer(self, data: tuple, now: float) -> None:
        """Ack-timeout expiry: retransmit with backoff, or hold/skip."""
        uid, attempt = data
        ps = self.pending.get(uid)
        if ps is None or ps.attempt != attempt:
            return  # acked or superseded: lazily cancelled
        self.report.timeouts += 1
        s = ps.stream
        if self.router.proc_of[s.src] in self.router.dead:
            return  # sender's owner crashed; failover re-arms
        if self.router.proc_of[s.dst] in self.router.dead:
            # Destination is down: hold the message (without burning
            # retries) until failover re-routes it.
            ps.attempt += 1
            self.sim.push(now + ps.timeout, "timer", (uid, ps.attempt))
            return
        if ps.retries >= self.rcfg.max_retries:
            raise ReproError(
                f"message {uid!r} undeliverable after "
                f"{self.rcfg.max_retries} retries"
            )
        ps.retries += 1
        ps.attempt += 1
        self.report.retries += 1
        self.transmit(ps, now)
        ps.timeout *= self.rcfg.backoff
        self.sim.push(now + ps.timeout, "timer", (uid, ps.attempt))

    def on_nack(self, uid: tuple, now: float) -> None:
        """Checksum-mismatch report from the receiver: retransmit
        immediately (fast retransmit).

        Corruption is a transient wire fault, not an unreachable peer,
        so a NACKed retransmission does not burn the retry budget; the
        ack timer stays armed as the backstop for a lost NACK.
        """
        ps = self.pending.get(uid)
        if ps is None:
            return  # a clean copy got through and was acked meanwhile
        s = ps.stream
        if self.router.proc_of[s.src] in self.router.dead:
            return  # sender's owner crashed; failover re-arms
        ps.attempt += 1
        self.transmit(ps, now)
        self.sim.push(now + ps.timeout, "timer", (uid, ps.attempt))

    # -- receive path --------------------------------------------------------------

    def receive(self, s: Stream, proc: int, now: float) -> bool:
        """Verify, ack and dedup an arriving stream; False when it must
        not be delivered (corrupted copy or duplicate).

        A checksum mismatch NACKs the sender instead of acking (the
        corrupted copy is never marked seen, so the clean retransmit is
        delivered normally); otherwise acks on arrival (a cheap control
        message to the sender's current owner), then discards
        duplicates: retransmissions and injected copies re-ack but are
        invisible to the program.
        """
        uid = s.uid
        if uid is None:
            return True
        src_proc = self.router.proc_of[s.src]
        if s.checksum is not None and stream_checksum(s) != s.checksum:
            self.report.nacks += 1
            if self.inj is not None and self.inj.link_cut(proc, src_proc, now):
                self.report.partition_drops += 1  # NACK black-holed too
            else:
                t = self.machine.control_time(proc, src_proc, self.layout)
                self.sim.push(now + t, "nack", uid)
            return False
        if self.inj is not None and self.inj.link_cut(proc, src_proc, now):
            self.report.partition_drops += 1  # ack black-holed by the cut
        elif self.inj is None or not self.inj.ack_dropped():
            ack_t = self.machine.control_time(proc, src_proc, self.layout)
            self.sim.push(now + ack_t, "ack", uid)
        if uid in self.seen:
            return False
        if self.san is not None:
            self.san.on_delivery(s, proc)
        self.seen.add(uid)
        return True

    # -- checkpoint/failover support -----------------------------------------------

    def pending_of(self, pid: ProgramId) -> dict[tuple, Stream]:
        """This program's un-acked sends (snapshotted into checkpoints)."""
        return {
            uid: ps.stream
            for uid, ps in self.pending.items()
            if ps.src_pid == pid
        }

    def rearm_after_failover(self, moved: set, ckpt: dict, now: float) -> None:
        """Re-arm the migrated programs' un-acked sends.

        Snapshot-time sends are retransmitted verbatim (same uid, so a
        late original copy is discarded by the receiver); sends made
        after the snapshot are dropped - the replayed execution
        regenerates them under fresh uids, and receivers dedupe their
        content at edge granularity.
        """
        for uid in list(self.pending):
            ps = self.pending[uid]
            if ps.src_pid not in moved:
                continue
            ck = ckpt[ps.src_pid]
            if ck is None or uid not in ck.pending:
                del self.pending[uid]
            else:
                ps.retries = 0
                ps.timeout = self.rcfg.ack_timeout
                ps.attempt += 1
                self.transmit(ps, now)
                self.sim.push(now + ps.timeout, "timer", (uid, ps.attempt))

    # -- liveness diagnosis -------------------------------------------------------

    def stall_snapshot(self, t: float) -> StallReport | None:
        """Wait-for snapshot for the liveness watchdog.

        Called when retransmit timers keep circulating with no progress
        event processed for a full horizon.  Returns ``None`` when no
        sends are outstanding (stale timers; the heap will drain), else
        a :class:`StallReport` naming every blocked dependency - who is
        starved, who owes the stream, and why it cannot arrive
        (partitioned link, dead peer, or plain ack starvation) - plus
        any wait-for cycle among the blocked programs.
        """
        if not self.pending:
            return None
        router, inj = self.router, self.inj
        waiting: list[WaitEdge] = []
        lost: list[WaitEdge] = []
        holders: dict[str, set[str]] = {}  # waiter -> stream owers
        for ps in self.pending.values():
            s = ps.stream
            src_p = router.proc_of[s.src]
            dst_p = router.proc_of[s.dst]
            cut = (
                inj.cut_window(src_p, dst_p, t) if inj is not None else None
            )
            if cut is not None:
                reason = f"link {src_p}->{dst_p} partitioned" + (
                    f" until t={cut.end:.6f}s" if cut.heals
                    else " (never heals)"
                )
            elif dst_p in router.dead:
                reason = f"receiver proc {dst_p} is dead"
            elif src_p in router.dead:
                reason = f"sender's owner proc {src_p} is dead"
            else:
                reason = "awaiting ack"
            edge = WaitEdge(
                waiter=str(s.dst), holder=str(s.src),
                src_proc=src_p, dst_proc=dst_p,
                retries=ps.retries, reason=reason,
            )
            waiting.append(edge)
            if cut is not None and not cut.heals:
                lost.append(edge)
            holders.setdefault(edge.waiter, set()).add(edge.holder)
        return StallReport(
            now=t,
            last_progress=self.sim.last_progress,
            horizon=self.rcfg.watchdog_horizon,
            pending_events=len(self.sim),
            waiting=tuple(waiting),
            lost=tuple(lost),
            cycle=_find_cycle(holders),
        )


def _find_cycle(edges: dict[str, set[str]]) -> tuple[str, ...]:
    """First directed cycle in a waiter->holders graph, or ()."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {v: WHITE for v in edges}
    stack: list[str] = []

    def dfs(v: str) -> tuple[str, ...]:
        color[v] = GRAY
        stack.append(v)
        for w in sorted(edges.get(v, ())):
            c = color.get(w, WHITE)
            if c == GRAY:
                return tuple(stack[stack.index(w):]) + (w,)
            if c == WHITE and w in edges:
                found = dfs(w)
                if found:
                    return found
        stack.pop()
        color[v] = BLACK
        return ()

    for v in sorted(edges):
        if color[v] == WHITE:
            found = dfs(v)
            if found:
                return found
    return ()

"""Machine model of the simulated cluster (Tianhe-2 analogue).

The paper's platform: nodes with two 12-core sockets, one MPI process
per socket (bound to it), the master thread on a reserved core and 11
worker threads; the Tianhe Express-II network at 40 GB/s.  This module
describes such a machine and maps a requested total core count to a
(process, worker) layout for each runtime *mode*:

``hybrid``    the JSweep runtime: 1 process per socket, dedicated
              master core, ``cores_per_proc - 1`` workers.
``mpi_only``  the JASMIN/JAUMIN/PSD-b baseline style: every core is an
              MPI rank doing both computation and communication; no
              dedicated master, so message handling competes with
              compute on the same core.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import ReproError

__all__ = ["Machine", "Layout", "TIANHE2"]


@dataclass(frozen=True)
class Layout:
    """Resolved process/worker layout for a run."""

    total_cores: int
    nprocs: int
    workers_per_proc: int
    mode: str

    @property
    def total_workers(self) -> int:
        return self.nprocs * self.workers_per_proc


@dataclass(frozen=True)
class Machine:
    """Cluster hardware description."""

    cores_per_proc: int = 12  # cores per MPI process (one socket)
    procs_per_node: int = 2
    latency_intra: float = 1.5e-6  # seconds, same-node message
    latency_inter: float = 6.0e-6  # seconds, cross-node message
    bandwidth: float = 5.0e9  # bytes/second effective per link
    control_bytes: int = 32  # wire size of a control message (acks)

    def layout(self, total_cores: int, mode: str = "hybrid") -> Layout:
        """Process/worker layout for ``total_cores`` in the given mode."""
        if total_cores <= 0:
            raise ReproError("total_cores must be positive")
        if mode == "hybrid":
            if total_cores % self.cores_per_proc:
                raise ReproError(
                    f"total_cores must be a multiple of {self.cores_per_proc}"
                )
            nprocs = total_cores // self.cores_per_proc
            workers = max(1, self.cores_per_proc - 1)  # master core reserved
            return Layout(total_cores, nprocs, workers, mode)
        if mode == "mpi_only":
            return Layout(total_cores, total_cores, 1, mode)
        raise ReproError(f"unknown runtime mode {mode!r}")

    def node_of(self, proc: int, layout: Layout) -> int:
        if layout.mode == "mpi_only":
            # One rank per core: cores_per_proc * procs_per_node ranks per node.
            return proc // (self.cores_per_proc * self.procs_per_node)
        return proc // self.procs_per_node

    def message_time(self, src: int, dst: int, nbytes: int, layout: Layout) -> float:
        """Wire time of one message between two processes."""
        lat = (
            self.latency_intra
            if self.node_of(src, layout) == self.node_of(dst, layout)
            else self.latency_inter
        )
        return lat + nbytes / self.bandwidth

    def control_time(self, src: int, dst: int, layout: Layout) -> float:
        """Wire time of one control message (ack, marker): latency +
        a fixed tiny header, independent of application payloads."""
        return self.message_time(src, dst, self.control_bytes, layout)


#: The evaluation platform: Tianhe-2 nodes (2 x 12-core Ivy Bridge,
#: Express-II network).  Bandwidth is the effective per-link share.
TIANHE2 = Machine()

"""Batched master event loop for clean runs (the hot path).

Fault-free runs (no :class:`~repro.runtime.faults.RecoveryConfig`
armed) only ever see the four data-plane event kinds - ``run_start``,
``run_end``, ``msg_arrive``, ``deliver`` - and never trigger the
staleness filters, progress retraction, or control-plane dispatch of
the general loop in :mod:`repro.runtime.engine_des`.  This module is
that loop with everything unreachable stripped out and the remainder
specialized:

* whole same-timestamp batches are drained per iteration via
  :meth:`~repro.runtime.simulator.Simulator.pop_batch` (one heap
  access pattern, one makespan update per batch);
* dispatch compares interned kind *ids* (ints) instead of strings.

Batching is sound because events pushed while a batch is being
processed carry strictly larger tie-break sequences: they sort after
every event already drained even at the same timestamp, so the
interleaving is identical to one-at-a-time ``pop``.  Per-event
accounting (progress clock, quiescence counter, trace hook, pop
counts) happens inside ``pop_batch`` in pop order.  Golden
fingerprints are bitwise identical to the general loop.

Snapshot-armed and resumed runs (a ``persist`` manager supplied to
:meth:`DataDrivenRuntime.run`, or any :meth:`~repro.runtime.
engine_des.DataDrivenRuntime.resume`) stay on the general loop: the
snapshot cut must fall on a single-pop boundary, and the bitwise
guarantee above is exactly what makes that safe - a run snapshotted on
the general loop finishes identical to a clean fastloop run.
"""

from __future__ import annotations

import gc
from heapq import heappop as _heappop

from .._util import ReproError
from ..core.patch_program import ProgramState

__all__ = ["clean_loop"]


def clean_loop(sim, sched, transport, st, router, cm, slow, bd, unit) -> int:
    """Drain the event heap to quiescence on the clean fast path.

    Returns the number of events processed; the engine owns the
    ``RunReport`` counters and stamps them (PROTO002 layering).
    Deadline-budgeted runs stay on the general loop - the per-event
    budget check belongs to the composition root.

    ``unit`` is True when the slowdown hook is the constant 1.0 (no
    fault injector); the ``* 1.0`` scalings it guards are bitwise
    no-ops on IEEE doubles, so skipping them cannot perturb times.
    """
    k_rs = sched._k_run_start
    k_re = sched._k_run_end
    k_dl = sched._k_deliver
    k_ma = transport._k_msg_arrive
    execute, complete = sched.execute, sched.complete
    receive = transport.receive
    masters = sched.masters
    inbox, state = st.inbox, st.state
    running = sched.running
    enqueue, dispatch = sched.enqueue, sched.dispatch
    idle, pq, epoch = sched.idle_workers, sched.pq, st.epoch
    proc_idx = router.proc_idx
    index_of = router.index_of
    unpack_cost = cm.unpack_cost
    push_id = sim.push_id
    bd_add = bd.add
    pop_batch = sim.pop_batch
    active = ProgramState.ACTIVE
    events = 0
    # All four clean-run kinds are progress kinds, so when no trace
    # hook is armed the batch drain inlines below with slab locals
    # bound once for the whole run (pop_batch rebinds them per call -
    # pure overhead at the tiny batch sizes unstructured runs produce)
    # and the quiescence count is simply the batch length.  Accounting
    # is line-for-line pop_batch's; fingerprints are bitwise identical.
    fast = sim.trace_hook is None and all(
        sim._progress_mask[k] for k in (k_rs, k_re, k_dl, k_ma)
    )
    heap = sim._events
    slab_kind, slab_data = sim._slab_kind, sim._slab_data
    free_append = sim._free.append
    counts = sim._pop_counts
    heappop = _heappop
    # The drain loop allocates only short-lived tuples/lists that
    # refcounting alone reclaims; generational GC passes are pure
    # overhead here, so pause collection for the drain (restored even
    # on StallError/deadline exits).
    gc_was = gc.isenabled()
    if gc_was:
        gc.disable()
    try:
        while heap:
            if fast:
                n = len(heap)
                if n > sim.peak_heap:
                    sim.peak_heap = n
                now, _, slot = heappop(heap)
                batch = []
                append_batch = batch.append
                while True:
                    kid = slab_kind[slot]
                    counts[kid] += 1
                    append_batch((kid, slab_data[slot]))
                    slab_data[slot] = None
                    free_append(slot)
                    if not heap or heap[0][0] != now:
                        break
                    _, _, slot = heappop(heap)
                nb = len(batch)
                sim.live -= nb
                sim._prev_progress = now if nb > 1 else sim.last_progress
                sim.last_progress = now
                if now > sim.makespan:
                    sim.makespan = now
                sim._turn_t = now
                sim._turn_batch = batch
            else:
                now, batch = pop_batch()
            # NB: the loop below iterates a list that pop_batch's
            # same-time turnaround may grow mid-flight (push_id appends
            # events landing at exactly ``now``); list iteration picks
            # the appends up in order, and the count is taken after.
            for kid, data in batch:
                if kid == k_rs:
                    execute(data, now)
                elif kid == k_re:
                    complete(data, now)
                elif kid == k_dl:
                    i, s = data
                    inbox[i].append(s)
                    if state[i] is not active:
                        state[i] = active
                    if i not in running:
                        p = proc_idx[i]
                        iw = idle[p]
                        if iw and not pq[p]:
                            # Queue bypass (see Scheduler.complete):
                            # dispatch would pop exactly this program
                            # onto exactly this worker; skipping the
                            # queue round trip only renumbers sequence
                            # ticks, never reorders events.
                            running.add(i)
                            push_id(now, k_rs, (p, iw.pop(), i, epoch[i]))
                        else:
                            enqueue(i)
                            dispatch(p, now)
                elif kid == k_ma:
                    p, s, wid = data
                    # Unstamped streams always deliver (dedup/checksum
                    # machinery only exists on reliable runs).
                    receive(s, p, now, wid)
                    dur = unpack_cost(1, s.items)
                    if not unit:
                        dur *= slow(p, now)
                    m = masters[p]
                    _, end = m.book(now, dur)
                    bd_add(m.core, "unpack", dur)
                    di = s.dsti
                    push_id(
                        end, k_dl, (di if di >= 0 else index_of[s.dst], s)
                    )
                else:  # pragma: no cover - defensive
                    raise ReproError(
                        f"unexpected event kind in clean run (id {kid})"
                    )
            events += len(batch)
    finally:
        sim._turn_t = -1.0
        sim._turn_batch = None
        if gc_was:
            gc.enable()
    return events

"""Structured-mesh decomposition: patchify a box and map patches to ranks.

Mirrors JAxMIN's structured decomposition: the domain box is tiled with
fixed-size patches (e.g. 20x20x20 in the paper's JSNT-S experiments) and
patches are assigned to MPI processes along a space-filling curve so
each rank receives a compact, load-balanced set of patches.
"""

from __future__ import annotations

import numpy as np

from .._util import ReproError
from ..mesh.box import Box, split_box
from ..mesh.structured import StructuredMesh
from .sfc import chunk_by_weight, sfc_order

__all__ = ["patchify_structured", "assign_patches_sfc"]


def patchify_structured(
    mesh: StructuredMesh, patch_shape: tuple[int, ...]
) -> list[Box]:
    """Tile the mesh domain with patches of ``patch_shape`` cells.

    Trailing patches shrink when the mesh extent is not a multiple of
    the patch extent, exactly as in JAxMIN.
    """
    if len(patch_shape) != mesh.ndim:
        raise ReproError("patch_shape rank mismatch with mesh")
    return split_box(mesh.domain_box, patch_shape)


def assign_patches_sfc(
    boxes: list[Box], nprocs: int, curve: str = "hilbert"
) -> np.ndarray:
    """Assign patch boxes to ``nprocs`` ranks along a space-filling curve.

    Patches are ordered by the SFC position of their lower corner (in
    patch-lattice coordinates) and cut into weight-balanced contiguous
    chunks, weight being the patch cell count.
    """
    if not boxes:
        raise ReproError("no patches to assign")
    ndim = boxes[0].ndim
    los = np.array([b.lo for b in boxes], dtype=np.int64)
    # Normalize to a compact lattice: rank of each distinct lo per axis.
    lattice = np.zeros_like(los)
    for ax in range(ndim):
        uniq = np.unique(los[:, ax])
        lattice[:, ax] = np.searchsorted(uniq, los[:, ax])
    order = sfc_order(lattice, curve=curve)
    weights = np.array([b.size for b in boxes], dtype=np.float64)
    return chunk_by_weight(order, weights, nprocs)

"""Domain decomposition: space-filling curves, RCB and graph partitioners.

System S4 in DESIGN.md - the stand-in for METIS/Chaco (unstructured)
and Morton/Hilbert SFC assignment (structured).
"""

from .graph import (
    CSRGraph,
    edge_cut,
    greedy_partition,
    multilevel_partition,
    part_weights,
    spectral_bisection,
)
from .rcb import rcb_partition
from .sfc import (
    chunk_by_weight,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
    sfc_order,
)
from .structured import assign_patches_sfc, patchify_structured
from .unstructured import UnstructuredDecomposition, decompose_unstructured

__all__ = [
    "CSRGraph",
    "edge_cut",
    "part_weights",
    "greedy_partition",
    "spectral_bisection",
    "multilevel_partition",
    "rcb_partition",
    "morton_encode",
    "morton_decode",
    "hilbert_encode",
    "hilbert_decode",
    "sfc_order",
    "chunk_by_weight",
    "assign_patches_sfc",
    "patchify_structured",
    "UnstructuredDecomposition",
    "decompose_unstructured",
]

"""Space-filling curves (Morton and Hilbert) for structured partitioning.

JAxMIN assigns structured-mesh patches to processes by ordering the
patch lattice along a space-filling curve and cutting the curve into
balanced contiguous chunks; this module provides the same machinery.
All encoders are vectorized over arrays of integer coordinates.
"""

from __future__ import annotations

import numpy as np

from .._util import ReproError, as_int_array

__all__ = [
    "morton_encode",
    "morton_decode",
    "hilbert_encode",
    "hilbert_decode",
    "sfc_order",
    "chunk_by_weight",
]


def _check_coords(coords: np.ndarray, bits: int) -> np.ndarray:
    coords = as_int_array(coords, ndim=2)
    if bits <= 0 or bits * coords.shape[1] > 62:
        raise ReproError(f"unsupported bits={bits} for dim={coords.shape[1]}")
    if coords.size and (coords.min() < 0 or coords.max() >= (1 << bits)):
        raise ReproError("coordinates out of range for given bits")
    return coords


# -- Morton ---------------------------------------------------------------------


def morton_encode(coords: np.ndarray, bits: int) -> np.ndarray:
    """Interleave-bit (Z-order) keys for (n, dim) integer coordinates."""
    coords = _check_coords(coords, bits)
    n, dim = coords.shape
    keys = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        for ax in range(dim):
            bit = (coords[:, ax] >> b) & 1
            keys |= bit << (b * dim + (dim - 1 - ax))
    return keys


def morton_decode(keys: np.ndarray, bits: int, dim: int) -> np.ndarray:
    """Inverse of :func:`morton_encode`."""
    keys = as_int_array(keys)
    coords = np.zeros((len(keys), dim), dtype=np.int64)
    for b in range(bits):
        for ax in range(dim):
            bit = (keys >> (b * dim + (dim - 1 - ax))) & 1
            coords[:, ax] |= bit << b
    return coords


# -- Hilbert (Skilling's transpose algorithm) -----------------------------------


def _axes_to_transpose(x: np.ndarray, bits: int) -> np.ndarray:
    """In-place Skilling AxesToTranspose, vectorized over rows of ``x``."""
    dim = x.shape[1]
    m = np.int64(1) << (bits - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(dim):
            on = (x[:, i] & q) != 0
            x[:, 0] ^= np.where(on, p, 0)  # invert
            t = np.where(on, 0, (x[:, 0] ^ x[:, i]) & p)  # exchange
            x[:, 0] ^= t
            x[:, i] ^= t
        q >>= 1
    for i in range(1, dim):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(len(x), dtype=np.int64)
    q = m
    while q > 1:
        on = (x[:, dim - 1] & q) != 0
        t ^= np.where(on, q - 1, 0)
        q >>= 1
    for i in range(dim):
        x[:, i] ^= t
    return x


def _transpose_to_axes(x: np.ndarray, bits: int) -> np.ndarray:
    """In-place Skilling TransposeToAxes, vectorized over rows of ``x``."""
    dim = x.shape[1]
    n = np.int64(2) << (bits - 1)
    # Gray decode by H ^ (H/2)
    t = x[:, dim - 1] >> 1
    for i in range(dim - 1, 0, -1):
        x[:, i] ^= x[:, i - 1]
    x[:, 0] ^= t
    q = np.int64(2)
    while q != n:
        p = q - 1
        for i in range(dim - 1, -1, -1):
            on = (x[:, i] & q) != 0
            x[:, 0] ^= np.where(on, p, 0)
            t = np.where(on, 0, (x[:, 0] ^ x[:, i]) & p)
            x[:, 0] ^= t
            x[:, i] ^= t
        q <<= 1
    return x


def _pack_transpose(x: np.ndarray, bits: int) -> np.ndarray:
    """Interleave the transpose form into scalar Hilbert indices."""
    dim = x.shape[1]
    keys = np.zeros(len(x), dtype=np.int64)
    pos = dim * bits - 1
    for b in range(bits - 1, -1, -1):
        for i in range(dim):
            keys |= ((x[:, i] >> b) & 1) << pos
            pos -= 1
    return keys


def _unpack_transpose(keys: np.ndarray, bits: int, dim: int) -> np.ndarray:
    x = np.zeros((len(keys), dim), dtype=np.int64)
    pos = dim * bits - 1
    for b in range(bits - 1, -1, -1):
        for i in range(dim):
            x[:, i] |= ((keys >> pos) & 1) << b
            pos -= 1
    return x


def hilbert_encode(coords: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert-curve keys for (n, dim) integer coordinates."""
    coords = _check_coords(coords, bits)
    x = coords.copy()
    _axes_to_transpose(x, bits)
    return _pack_transpose(x, bits)


def hilbert_decode(keys: np.ndarray, bits: int, dim: int) -> np.ndarray:
    """Inverse of :func:`hilbert_encode`."""
    keys = as_int_array(keys)
    x = _unpack_transpose(keys, bits, dim)
    return _transpose_to_axes(x, bits)


# -- partitioning helpers --------------------------------------------------------


def sfc_order(coords: np.ndarray, curve: str = "hilbert") -> np.ndarray:
    """Permutation ordering integer coordinates along an SFC."""
    coords = as_int_array(coords, ndim=2)
    if len(coords) == 0:
        return np.zeros(0, dtype=np.int64)
    span = int(coords.max()) + 1 if coords.size else 1
    bits = max(1, int(np.ceil(np.log2(max(span, 2)))))
    if curve == "morton":
        keys = morton_encode(coords, bits)
    elif curve == "hilbert":
        keys = hilbert_encode(coords, bits)
    else:
        raise ReproError(f"unknown curve {curve!r}")
    return np.argsort(keys, kind="stable")


def chunk_by_weight(
    order: np.ndarray, weights: np.ndarray, nparts: int
) -> np.ndarray:
    """Cut an ordered sequence into ``nparts`` weight-balanced chunks.

    Returns a part id per element (indexed like ``weights``); every part
    is non-empty when ``nparts <= len(order)``.
    """
    if nparts <= 0:
        raise ReproError("nparts must be positive")
    weights = np.asarray(weights, dtype=np.float64)
    n = len(order)
    if nparts > n:
        raise ReproError(f"cannot make {nparts} non-empty parts of {n} items")
    part = np.zeros(len(weights), dtype=np.int64)
    total = float(weights[order].sum())
    if total <= 0:
        weights = np.ones_like(weights)
        total = float(n)
    cum = 0.0
    p = 0
    count_in_p = 0
    for rank, idx in enumerate(order):
        # Once the items left barely cover the unfilled parts, every
        # remaining item must open a new part.
        must_advance = (n - rank) <= (nparts - p)
        past_quota = cum + 0.5 * weights[idx] >= (p + 1) * total / nparts
        if p < nparts - 1 and count_in_p > 0 and (must_advance or past_quota):
            p += 1
            count_in_p = 0
        part[idx] = p
        cum += weights[idx]
        count_in_p += 1
    return part

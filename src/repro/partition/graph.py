"""Graph partitioning for unstructured meshes (METIS/Chaco stand-in).

The paper decomposes unstructured meshes with METIS [18] / Chaco [19].
Neither is available offline, so this module implements the same
family of algorithms from scratch:

* :func:`greedy_partition` - BFS region growing (fast, decent quality),
* :func:`spectral_bisection` - Fiedler-vector bisection,
* :func:`multilevel_partition` - heavy-edge-matching coarsening +
  spectral bisection at the coarsest level + greedy boundary
  refinement during uncoarsening (the Chaco/METIS recipe).

All operate on CSR adjacency ``(indptr, indices)`` as produced by
:meth:`repro.mesh.UnstructuredMesh.adjacency_graph`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .._util import ReproError

__all__ = [
    "CSRGraph",
    "greedy_partition",
    "spectral_bisection",
    "multilevel_partition",
    "edge_cut",
    "part_weights",
]


@dataclass
class CSRGraph:
    """Undirected graph in CSR form with vertex and edge weights."""

    indptr: np.ndarray
    indices: np.ndarray
    vwgt: np.ndarray
    ewgt: np.ndarray

    @classmethod
    def from_adjacency(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        vwgt: np.ndarray | None = None,
        ewgt: np.ndarray | None = None,
    ) -> "CSRGraph":
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        n = len(indptr) - 1
        if vwgt is None:
            vwgt = np.ones(n)
        if ewgt is None:
            ewgt = np.ones(len(indices))
        return cls(indptr, indices, np.asarray(vwgt, float), np.asarray(ewgt, float))

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def to_sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (self.ewgt, self.indices, self.indptr),
            shape=(self.num_vertices, self.num_vertices),
        )


# -- quality metrics -------------------------------------------------------------


def edge_cut(graph: CSRGraph, part: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    total = 0.0
    for v in range(graph.num_vertices):
        lo, hi = graph.indptr[v], graph.indptr[v + 1]
        nbrs = graph.indices[lo:hi]
        w = graph.ewgt[lo:hi]
        total += float(w[part[nbrs] != part[v]].sum())
    return total / 2.0


def part_weights(graph: CSRGraph, part: np.ndarray, nparts: int) -> np.ndarray:
    return np.bincount(part, weights=graph.vwgt, minlength=nparts)


# -- greedy BFS growing ------------------------------------------------------------


def greedy_partition(graph: CSRGraph, nparts: int, seed: int = 0) -> np.ndarray:
    """BFS region growing: grow each part from a peripheral seed.

    Produces connected (when the graph is connected), balanced parts;
    quality is below multilevel but construction is O(V + E).
    """
    n = graph.num_vertices
    if nparts > n:
        raise ReproError(f"cannot make {nparts} non-empty parts of {n} vertices")
    part = np.full(n, -1, dtype=np.int64)
    total = float(graph.vwgt.sum())
    assigned = 0

    start = _peripheral_vertex(graph, int(seed) % n)
    for p in range(nparts):
        target = (total - graph.vwgt[part >= 0].sum()) / (nparts - p)
        # Seed: unassigned vertex farthest from assigned region (first part:
        # peripheral vertex).
        s = start if p == 0 else _farthest_unassigned(graph, part)
        acc = 0.0
        q: deque[int] = deque([s])
        enq = {s}
        while q and (acc < target or p == nparts - 1):
            v = q.popleft()
            if part[v] >= 0:
                continue
            part[v] = p
            acc += graph.vwgt[v]
            assigned += 1
            for u in graph.neighbors(v):
                if part[u] < 0 and u not in enq:
                    enq.add(int(u))
                    q.append(int(u))
    # Sweep up leftovers (disconnected graphs): attach to lightest part.
    if assigned < n:
        wts = part_weights(graph, np.where(part >= 0, part, 0), nparts)
        for v in np.nonzero(part < 0)[0]:
            nbr_parts = part[graph.neighbors(v)]
            nbr_parts = nbr_parts[nbr_parts >= 0]
            p = (
                int(nbr_parts[np.argmin(wts[nbr_parts])])
                if len(nbr_parts)
                else int(np.argmin(wts))
            )
            part[v] = p
            wts[p] += graph.vwgt[v]
    return part


def _peripheral_vertex(graph: CSRGraph, start: int) -> int:
    """Approximate peripheral vertex via a double BFS sweep."""
    far = _bfs_farthest(graph, start)
    return _bfs_farthest(graph, far)


def _bfs_farthest(graph: CSRGraph, s: int) -> int:
    seen = np.zeros(graph.num_vertices, dtype=bool)
    seen[s] = True
    q = deque([s])
    last = s
    while q:
        v = q.popleft()
        last = v
        for u in graph.neighbors(v):
            if not seen[u]:
                seen[u] = True
                q.append(int(u))
    return int(last)


def _farthest_unassigned(graph: CSRGraph, part: np.ndarray) -> int:
    """Unassigned vertex at maximum BFS distance from the assigned set."""
    n = graph.num_vertices
    dist = np.full(n, -1, dtype=np.int64)
    q: deque[int] = deque()
    for v in np.nonzero(part >= 0)[0]:
        dist[v] = 0
        q.append(int(v))
    best, best_d = -1, -1
    while q:
        v = q.popleft()
        for u in graph.neighbors(v):
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                q.append(int(u))
                if part[u] < 0 and dist[u] > best_d:
                    best, best_d = int(u), int(dist[u])
    if best < 0:
        # Assigned set does not reach any unassigned vertex (disconnected).
        unassigned = np.nonzero(part < 0)[0]
        best = int(unassigned[0])
    return best


# -- spectral bisection -------------------------------------------------------------


def spectral_bisection(
    graph: CSRGraph, frac: float = 0.5, seed: int = 0
) -> np.ndarray:
    """Split into two parts using the Fiedler vector of the Laplacian.

    ``frac`` is the target weight fraction of part 0.  Falls back to a
    BFS split when the eigensolver fails (tiny or disconnected graphs).
    """
    n = graph.num_vertices
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    try:
        a = graph.to_sparse()
        a = (a + a.T) * 0.5
        lap = sp.csgraph.laplacian(a)
        rng = np.random.default_rng(seed)
        v0 = rng.standard_normal(n)
        k = min(2, n - 1)
        vals, vecs = spla.eigsh(lap, k=k, sigma=-1e-6, which="LM", v0=v0)
        fiedler = vecs[:, np.argmax(vals)]
    except Exception:
        return _bfs_bisect(graph, frac)
    order = np.argsort(fiedler, kind="stable")
    return _cut_order(graph, order, frac)


def _bfs_bisect(graph: CSRGraph, frac: float) -> np.ndarray:
    start = _peripheral_vertex(graph, 0)
    dist = np.full(graph.num_vertices, np.inf)
    dist[start] = 0
    q = deque([start])
    counter = 0
    order_val = np.full(graph.num_vertices, np.inf)
    while q:
        v = q.popleft()
        order_val[v] = counter
        counter += 1
        for u in graph.neighbors(v):
            if np.isinf(dist[u]):
                dist[u] = dist[v] + 1
                q.append(int(u))
    order = np.argsort(order_val, kind="stable")
    return _cut_order(graph, order, frac)


def _cut_order(graph: CSRGraph, order: np.ndarray, frac: float) -> np.ndarray:
    w = graph.vwgt[order]
    csum = np.cumsum(w)
    total = float(csum[-1])
    cut = int(np.searchsorted(csum, frac * total, side="left")) + 1
    cut = max(1, min(graph.num_vertices - 1, cut))
    part = np.ones(graph.num_vertices, dtype=np.int64)
    part[order[:cut]] = 0
    return part


# -- multilevel partitioning -----------------------------------------------------------


def _heavy_edge_matching(graph: CSRGraph, seed: int) -> np.ndarray:
    """Match vertices with their heaviest unmatched neighbour.

    Returns ``match`` where matched pairs share a coarse id; unmatched
    vertices map to their own coarse id.  Coarse ids are compacted.
    """
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    visit = rng.permutation(n)
    mate = np.full(n, -1, dtype=np.int64)
    for v in visit:
        if mate[v] >= 0:
            continue
        lo, hi = graph.indptr[v], graph.indptr[v + 1]
        nbrs = graph.indices[lo:hi]
        wts = graph.ewgt[lo:hi]
        best, best_w = -1, -1.0
        for u, w in zip(nbrs, wts):
            if mate[u] < 0 and u != v and w > best_w:
                best, best_w = int(u), float(w)
        if best >= 0:
            mate[v] = best
            mate[best] = v
        else:
            mate[v] = v
    # Compact coarse ids.
    coarse = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if coarse[v] < 0:
            coarse[v] = nxt
            coarse[mate[v]] = nxt
            nxt += 1
    return coarse


def _contract(graph: CSRGraph, coarse: np.ndarray) -> CSRGraph:
    nc = int(coarse.max()) + 1
    a = graph.to_sparse().tocoo()
    rows = coarse[a.row]
    cols = coarse[a.col]
    keep = rows != cols
    ac = sp.csr_matrix(
        (a.data[keep], (rows[keep], cols[keep])), shape=(nc, nc)
    )
    ac.sum_duplicates()
    vwgt = np.bincount(coarse, weights=graph.vwgt, minlength=nc)
    return CSRGraph(
        ac.indptr.astype(np.int64), ac.indices.astype(np.int64), vwgt, ac.data
    )


def _refine_boundary(
    graph: CSRGraph, part: np.ndarray, frac: float, passes: int = 2
) -> np.ndarray:
    """Greedy boundary refinement: move vertices with positive gain.

    Single-vertex moves only (no hill climbing), keeping the weight of
    part 0 within 10% of the ``frac`` target.
    """
    part = part.copy()
    total = float(graph.vwgt.sum())
    w0 = float(graph.vwgt[part == 0].sum())
    lo_bound = (frac - 0.1) * total
    hi_bound = (frac + 0.1) * total
    for _ in range(passes):
        moved = 0
        for v in range(graph.num_vertices):
            lo, hi = graph.indptr[v], graph.indptr[v + 1]
            nbrs = graph.indices[lo:hi]
            wts = graph.ewgt[lo:hi]
            same = float(wts[part[nbrs] == part[v]].sum())
            other = float(wts[part[nbrs] != part[v]].sum())
            gain = other - same
            if gain <= 0:
                continue
            new_w0 = w0 - graph.vwgt[v] if part[v] == 0 else w0 + graph.vwgt[v]
            if not (lo_bound <= new_w0 <= hi_bound):
                continue
            part[v] = 1 - part[v]
            w0 = new_w0
            moved += 1
        if moved == 0:
            break
    return part


def _multilevel_bisect(graph: CSRGraph, frac: float, seed: int) -> np.ndarray:
    if graph.num_vertices <= 64:
        return spectral_bisection(graph, frac, seed)
    coarse = _heavy_edge_matching(graph, seed)
    nc = int(coarse.max()) + 1
    if nc >= graph.num_vertices:  # matching failed to shrink, stop recursing
        return spectral_bisection(graph, frac, seed)
    cgraph = _contract(graph, coarse)
    cpart = _multilevel_bisect(cgraph, frac, seed + 1)
    part = cpart[coarse]
    return _refine_boundary(graph, part, frac)


def multilevel_partition(
    graph: CSRGraph, nparts: int, seed: int = 0
) -> np.ndarray:
    """METIS-style multilevel recursive bisection into ``nparts`` parts."""
    n = graph.num_vertices
    if nparts <= 0:
        raise ReproError("nparts must be positive")
    if nparts > n:
        raise ReproError(f"cannot make {nparts} non-empty parts of {n} vertices")
    out = np.zeros(n, dtype=np.int64)
    _recurse_multilevel(graph, np.arange(n), nparts, 0, out, seed)
    return out


def _recurse_multilevel(
    graph: CSRGraph,
    idx: np.ndarray,
    nparts: int,
    first_part: int,
    out: np.ndarray,
    seed: int,
) -> None:
    if nparts == 1:
        out[idx] = first_part
        return
    left = nparts // 2
    frac = left / nparts
    sub = _subgraph(graph, idx)
    half = _multilevel_bisect(sub, frac, seed)
    # Guarantee both sides non-empty.
    if half.min() == half.max():
        half[: max(1, len(half) // 2)] = 0
        half[max(1, len(half) // 2) :] = 1
    left_idx = idx[half == 0]
    right_idx = idx[half == 1]
    if len(left_idx) < left or len(right_idx) < nparts - left:
        # Degenerate split: fall back to an order-based cut that respects
        # minimum part sizes.
        order = np.argsort(half, kind="stable")
        left_idx = idx[order[: max(left, len(idx) - (nparts - left))]][
            : len(idx) - (nparts - left)
        ]
        lset = set(left_idx.tolist())
        right_idx = np.array([i for i in idx if i not in lset], dtype=np.int64)
    _recurse_multilevel(graph, left_idx, left, first_part, out, seed + 1)
    _recurse_multilevel(
        graph, right_idx, nparts - left, first_part + left, out, seed + 2
    )


def _subgraph(graph: CSRGraph, idx: np.ndarray) -> CSRGraph:
    n = graph.num_vertices
    remap = np.full(n, -1, dtype=np.int64)
    remap[idx] = np.arange(len(idx))
    indptr = [0]
    indices = []
    ewgt = []
    for v in idx:
        lo, hi = graph.indptr[v], graph.indptr[v + 1]
        for u, w in zip(graph.indices[lo:hi], graph.ewgt[lo:hi]):
            ru = remap[u]
            if ru >= 0:
                indices.append(int(ru))
                ewgt.append(float(w))
        indptr.append(len(indices))
    return CSRGraph(
        np.asarray(indptr, dtype=np.int64),
        np.asarray(indices, dtype=np.int64),
        graph.vwgt[idx],
        np.asarray(ewgt),
    )

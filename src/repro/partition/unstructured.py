"""Unstructured-mesh decomposition: cells -> patches -> ranks.

The paper's JSNT-U experiments decompose unstructured meshes into
patches of roughly ``patch_size`` cells (default 500) and distribute
patches across processes.  This module provides that two-level
decomposition with a choice of partitioners (RCB by default; the
multilevel graph partitioner for METIS-like quality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ReproError
from ..mesh.unstructured import UnstructuredMesh
from .graph import CSRGraph, greedy_partition, multilevel_partition
from .rcb import rcb_partition

__all__ = ["UnstructuredDecomposition", "decompose_unstructured"]


@dataclass
class UnstructuredDecomposition:
    """Result of a two-level unstructured decomposition.

    ``cell_patch[c]`` is the patch id of cell ``c``; ``patch_proc[p]``
    the rank owning patch ``p``.
    """

    cell_patch: np.ndarray
    patch_proc: np.ndarray

    @property
    def num_patches(self) -> int:
        return len(self.patch_proc)

    def patch_cells(self, patch: int) -> np.ndarray:
        return np.nonzero(self.cell_patch == patch)[0]

    def patches_of_proc(self, proc: int) -> np.ndarray:
        return np.nonzero(self.patch_proc == proc)[0]


def decompose_unstructured(
    mesh: UnstructuredMesh,
    patch_size: int,
    nprocs: int,
    method: str = "rcb",
    seed: int = 0,
) -> UnstructuredDecomposition:
    """Cut ``mesh`` into patches of about ``patch_size`` cells on ``nprocs``.

    ``method`` selects the cell->patch partitioner: ``"rcb"`` (fast,
    geometric), ``"multilevel"`` (METIS-like) or ``"greedy"`` (BFS
    growing).  Patches are then distributed to ranks with RCB over
    patch centroids, which keeps each rank's patches spatially compact
    the way SFC assignment does for structured meshes.
    """
    if patch_size <= 0:
        raise ReproError("patch_size must be positive")
    ncells = mesh.num_cells
    npatches = max(nprocs, (ncells + patch_size - 1) // patch_size)
    if npatches > ncells:
        raise ReproError(
            f"mesh of {ncells} cells cannot host {npatches} non-empty patches"
        )

    if method == "rcb":
        cell_patch = rcb_partition(mesh.cell_centroids, npatches)
    elif method in ("multilevel", "greedy"):
        indptr, indices = mesh.adjacency_graph()
        g = CSRGraph.from_adjacency(indptr, indices)
        cell_patch = (
            multilevel_partition(g, npatches, seed=seed)
            if method == "multilevel"
            else greedy_partition(g, npatches, seed=seed)
        )
    else:
        raise ReproError(f"unknown decomposition method {method!r}")

    # Patch centroids and weights for the patch->proc level.
    sums = np.zeros((npatches, mesh.ndim))
    np.add.at(sums, cell_patch, mesh.cell_centroids)
    counts = np.bincount(cell_patch, minlength=npatches).astype(np.float64)
    if np.any(counts == 0):
        raise ReproError("partitioner produced an empty patch")
    centroids = sums / counts[:, None]
    patch_proc = (
        np.zeros(npatches, dtype=np.int64)
        if nprocs == 1
        else rcb_partition(centroids, nprocs, weights=counts)
    )
    return UnstructuredDecomposition(cell_patch=cell_patch, patch_proc=patch_proc)

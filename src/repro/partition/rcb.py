"""Recursive coordinate bisection (RCB) partitioning.

RCB is the workhorse geometric partitioner used here for cutting
unstructured meshes into patches: it is fast, deterministic, produces
compact (low-surface) parts, and handles arbitrary part counts by
proportional splitting.
"""

from __future__ import annotations

import numpy as np

from .._util import ReproError

__all__ = ["rcb_partition"]


def rcb_partition(
    points: np.ndarray,
    nparts: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Partition ``points`` (n, dim) into ``nparts`` by recursive bisection.

    Each recursion splits the widest axis at the weighted quantile that
    divides the requested part counts proportionally, so ``nparts`` need
    not be a power of two.  Returns an int array of part ids; all parts
    are non-empty when ``nparts <= n``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ReproError("points must be (n, dim)")
    n = len(points)
    if nparts <= 0:
        raise ReproError("nparts must be positive")
    if nparts > n:
        raise ReproError(f"cannot make {nparts} non-empty parts of {n} points")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ReproError("weights must have one entry per point")
        if np.any(weights < 0):
            raise ReproError("weights must be non-negative")

    out = np.zeros(n, dtype=np.int64)
    _rcb(points, weights, np.arange(n), nparts, 0, out)
    return out


def _rcb(
    points: np.ndarray,
    weights: np.ndarray,
    idx: np.ndarray,
    nparts: int,
    first_part: int,
    out: np.ndarray,
) -> None:
    if nparts == 1:
        out[idx] = first_part
        return
    left_parts = nparts // 2
    right_parts = nparts - left_parts
    frac = left_parts / nparts

    pts = points[idx]
    spans = pts.max(axis=0) - pts.min(axis=0)
    axis = int(np.argmax(spans))
    order = np.argsort(pts[:, axis], kind="stable")

    w = weights[idx][order]
    total = float(w.sum())
    if total <= 0:
        # All-zero weights: fall back to equal counts.
        cut = max(left_parts, min(len(idx) - right_parts, int(len(idx) * frac)))
    else:
        csum = np.cumsum(w)
        cut = int(np.searchsorted(csum, frac * total, side="left")) + 1
        # Keep at least one point per side and enough points per part.
        cut = max(left_parts, min(len(idx) - right_parts, cut))

    left = idx[order[:cut]]
    right = idx[order[cut:]]
    _rcb(points, weights, left, left_parts, first_part, out)
    _rcb(points, weights, right, right_parts, first_part + left_parts, out)

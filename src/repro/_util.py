"""Small shared utilities used across the repro package."""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "as_int_array",
    "as_float_array",
    "check",
    "pairwise",
    "prod",
    "ReproError",
]


class ReproError(RuntimeError):
    """Base class for errors raised by the repro package."""


def check(cond: bool, msg: str) -> None:
    """Raise :class:`ReproError` with ``msg`` unless ``cond`` holds."""
    if not cond:
        raise ReproError(msg)


def as_int_array(a, ndim: int | None = None) -> np.ndarray:
    """Convert ``a`` to a contiguous int64 array, optionally checking rank."""
    arr = np.ascontiguousarray(a, dtype=np.int64)
    if ndim is not None and arr.ndim != ndim:
        raise ReproError(f"expected {ndim}-d integer array, got shape {arr.shape}")
    return arr


def as_float_array(a, ndim: int | None = None) -> np.ndarray:
    """Convert ``a`` to a contiguous float64 array, optionally checking rank."""
    arr = np.ascontiguousarray(a, dtype=np.float64)
    if ndim is not None and arr.ndim != ndim:
        raise ReproError(f"expected {ndim}-d float array, got shape {arr.shape}")
    return arr


def prod(seq: Iterable[int]) -> int:
    """Integer product of a sequence (empty product is 1)."""
    out = 1
    for s in seq:
        out *= int(s)
    return out


def pairwise(seq: Sequence) -> Iterator[tuple]:
    """Yield consecutive pairs ``(seq[i], seq[i+1])``."""
    a, b = itertools.tee(seq)
    next(b, None)
    return zip(a, b)

"""JSNT-S style run: the Kobayashi duct benchmark on a structured mesh.

Reproduces the paper's structured-mesh workload at laptop scale:
converges the dog-leg duct problem, prints the flux along the duct,
and runs a miniature strong-scaling study (Fig. 12's shape) with the
coarsened-graph optimization on.

Run:  python examples/kobayashi_structured.py
"""


from repro import JSNTS, Machine
from repro.sweep import product_quadrature


def main() -> None:
    machine = Machine(cores_per_proc=12)
    n = 18  # Kobayashi-18 (the paper runs Kobayashi-400/800)

    app = JSNTS.kobayashi(
        n,
        total_cores=24,
        machine=machine,
        patch_shape=(6, 6, 6),
        quadrature=product_quadrature(2, 12),  # 24 angles
        problem=3,
        scattering=True,
    )
    mesh = app.solver.mesh
    print(f"Kobayashi-{n} (dog-leg duct), {mesh.num_cells} cells, "
          f"{app.solver.quadrature.num_angles} angles, "
          f"{app.pset.num_patches} patches")

    result = app.solve(tol=1e-4, max_iterations=40)
    print(f"converged={result.converged} in {result.iterations} iterations")

    # Flux along the duct axis (x=2.5cm, z=2.5cm column).
    i = int(2.5 / 60.0 * n)
    print("\nflux along the first duct leg (y in cm):")
    for j in range(0, n, max(1, n // 8)):
        y = 60.0 * (j + 0.5) / n
        phi = result.phi[mesh.linear_index((i, j, i)), 0]
        print(f"  y={y:5.1f}  phi={phi:10.4e}")

    # Miniature strong-scaling study (shape of Fig. 12).
    print("\nstrong scaling (one sweep, coarsened graph, simulated cores):")
    base_time = None
    for cores in (24, 48, 96, 192):
        app = JSNTS.kobayashi(
            n,
            total_cores=cores,
            machine=machine,
            patch_shape=(6, 6, 6),
            quadrature=product_quadrature(2, 12),
        )
        rep = app.sweep_report(cores, coarsened=True)
        if base_time is None:
            base_time = rep.makespan * cores
        eff = base_time / (rep.makespan * cores)
        print(f"  cores={cores:4d}  T={rep.makespan * 1e3:8.2f} ms  "
              f"parallel efficiency={eff:5.2f}  idle={rep.idle_fraction():.2f}")


if __name__ == "__main__":
    main()

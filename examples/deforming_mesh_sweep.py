"""Sweeping a deforming structured mesh - the case KBA cannot handle.

The paper's introduction motivates the data-driven approach with
*deforming structured meshes*: logically regular grids whose warped
geometry breaks the regular upwind pattern KBA's pipeline relies on.
This example warps a quad grid, shows that the induced dependency
graphs remain acyclic DAGs (so the data-driven sweep just works),
solves a transport problem on it, and verifies particle balance.

Run:  python examples/deforming_mesh_sweep.py
"""

import numpy as np

from repro import (
    Machine,
    Material,
    MaterialMap,
    PatchSet,
    SnSolver,
    level_symmetric,
    warped_quad_mesh,
)
from repro.framework import build_interfaces
from repro.runtime import DataDrivenRuntime
from repro.sweep import check_acyclic, directed_edges


def main() -> None:
    mesh = warped_quad_mesh((24, 24), (1.0, 1.0), amplitude=0.2)
    print(f"deformed structured mesh: {mesh.num_cells} quads "
          f"(area preserved: {mesh.total_volume():.6f})")

    # Irregular upwind structure: count interior faces that are no
    # longer axis-aligned.
    interior = mesh.face_cells[:, 1] >= 0
    n = np.abs(mesh.face_normals[interior])
    off_axis = (np.minimum(n[:, 0], n[:, 1]) > 1e-6).mean()
    print(f"off-axis interior faces: {off_axis * 100:.0f}% "
          f"(KBA's regular pipeline assumption is broken)")

    quad = level_symmetric(4)
    it = build_interfaces(mesh)
    ok = all(
        check_acyclic(mesh.num_cells, *directed_edges(it, d))
        for d in quad.directions
    )
    print(f"all {quad.num_angles} sweep graphs acyclic: {ok}")

    pset = PatchSet.from_unstructured(mesh, 60, nprocs=2)
    materials = MaterialMap.uniform(
        Material.isotropic(2.0, 0.4), mesh.num_cells
    )
    solver = SnSolver(
        pset, quad, materials, np.ones((mesh.num_cells, 1)), grain=32
    )
    result = solver.source_iteration(tol=1e-8)
    print(f"source iteration: {result.iterations} iterations, "
          f"balance residual {solver.balance_residual(result):.2e}")

    machine = Machine(cores_per_proc=4)
    programs, _ = solver.build_programs(compute=False)
    report = DataDrivenRuntime(8, machine=machine).run(
        programs, pset.patch_proc
    )
    print(f"simulated sweep on 8 cores: {report.makespan * 1e3:.2f} ms, "
          f"idle={report.idle_fraction():.2f}, "
          f"overhead={report.overhead_fraction():.2f}")


if __name__ == "__main__":
    main()

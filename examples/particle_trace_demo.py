"""The second data-driven component: particle tracing through patches.

The paper's conclusion notes the patch-centric abstraction also hosts
particle trace.  This demo shoots rays from the centre of a
triangulated disk, traces them cell-by-cell across patch boundaries
(each crossing ships the particle as a stream), and verifies the exit
path lengths against the exact circle chords.  Total workload is
unknown a priori, so this component exercises the consensus
(Misra-marker) termination path.

Run:  python examples/particle_trace_demo.py
"""

import numpy as np

from repro import Machine, PatchSet, disk_tri_mesh, trace_particles
from repro.apps.particle_trace import Particle, ParticleTraceProgram
from repro.runtime import DataDrivenRuntime


def main() -> None:
    mesh = disk_tri_mesh(12)
    pset = PatchSet.from_unstructured(mesh, 60, nprocs=2)
    print(f"disk mesh: {mesh.num_cells} cells, {pset.num_patches} patches")

    n = 64
    rng = np.random.default_rng(42)
    pos = rng.uniform(-0.25, 0.25, size=(n, 2))
    theta = rng.uniform(0, 2 * np.pi, n)
    dirs = np.stack([np.cos(theta), np.sin(theta)], axis=1)

    particles = trace_particles(pset, pos, dirs)
    errs = []
    for p, p0, d in zip(particles, pos, dirs):
        b = p0 @ d
        chord = -b + np.sqrt(b * b - (p0 @ p0 - 1.0))
        errs.append(abs(p.path_length - chord))
    crossings = sum(p.crossings for p in particles)
    print(f"traced {len(particles)} rays, {crossings} cell crossings")
    print(f"path-length error vs exact circle chord: "
          f"median={np.median(errs):.4f}  p90={np.percentile(errs, 90):.4f}")

    # Same component under the DES runtime with consensus termination.
    from scipy.spatial import cKDTree

    machine = Machine(cores_per_proc=4)
    tree = cKDTree(mesh.cell_centroids)
    _, cells = tree.query(pos)
    seeds: dict[int, list[Particle]] = {}
    for i, (x, d, c) in enumerate(zip(pos, dirs, cells)):
        patch = int(pset.cell_patch[int(c)])
        seeds.setdefault(patch, []).append(Particle(i, x.copy(), d.copy(), int(c)))
    programs = [
        ParticleTraceProgram(pset, p.id, seeds.get(p.id, []))
        for p in pset.patches
    ]
    report = DataDrivenRuntime(
        8, machine=machine, termination="consensus"
    ).run(programs, pset.patch_proc)
    done = sum(len(p.finished) for p in programs)
    print(f"\nDES runtime: {done}/{n} rays finished, "
          f"makespan={report.makespan * 1e3:.3f} ms, "
          f"termination marker hops={report.termination_hops} "
          f"(workload unknown a priori => consensus protocol)")


if __name__ == "__main__":
    main()

"""JSNT-U style run: multigroup Sn transport on an unstructured reactor core.

The paper's unstructured workload: a heterogeneous reactor-core mesh
(fuel / control / reflector / vessel), S4 ordinates, 4 energy groups,
patches of ~500 cells.  Solves the flux, reports per-region averages,
and compares priority-strategy pairs on the simulated runtime
(Fig. 13b's experiment).

Run:  python examples/reactor_unstructured.py
"""


from repro import JSNTU, Machine

REGIONS = {1: "fuel", 2: "control", 3: "reflector", 4: "vessel"}


def main() -> None:
    machine = Machine(cores_per_proc=12)
    app = JSNTU.reactor(
        24,
        total_cores=24,
        machine=machine,
        patch_size=200,
        groups=4,
    )
    mesh = app.solver.mesh
    print(f"reactor mesh: {mesh.num_cells} cells, "
          f"{app.pset.num_patches} patches, 4 energy groups, "
          f"{app.solver.quadrature.num_angles} angles (S4)")

    result = app.solve(tol=1e-5, max_iterations=80)
    print(f"converged={result.converged} in {result.iterations} iterations")
    print("\ngroup-0 flux by region:")
    for mid, name in REGIONS.items():
        mask = mesh.materials == mid
        if mask.any():
            print(f"  {name:>9}: mean={result.phi[mask, 0].mean():9.4e}  "
                  f"max={result.phi[mask, 0].max():9.4e}")

    # Priority strategies on the simulated runtime (Fig. 13b).
    print("\npriority strategies, one sweep on 48 simulated cores:")
    for strategy in ("bfs", "bfs+slbd", "slbd", "slbd+bfs"):
        app = JSNTU.reactor(
            24,
            total_cores=48,
            machine=machine,
            patch_size=200,
            groups=4,
            strategy=strategy,
        )
        rep = app.sweep_report(48)
        print(f"  {strategy.upper():>9}: T={rep.makespan * 1e3:8.2f} ms  "
              f"idle={rep.idle_fraction():.2f}")


if __name__ == "__main__":
    main()

"""Quickstart: solve an Sn transport problem with data-driven sweeps.

Builds a small structured mesh, decomposes it into patches, converges
the scalar flux with source iteration, and then replays one sweep on
the simulated JSweep runtime to show the parallel-performance view.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DataDrivenRuntime,
    Machine,
    Material,
    MaterialMap,
    PatchSet,
    SnSolver,
    cube_structured,
    level_symmetric,
)


def main() -> None:
    # --- 1. mesh + patches (the JAxMIN layer) -------------------------
    mesh = cube_structured(16, length=8.0)
    machine = Machine(cores_per_proc=12)  # Tianhe-2-like socket
    total_cores = 24
    nprocs = machine.layout(total_cores, "hybrid").nprocs
    pset = PatchSet.from_structured(mesh, (8, 8, 8), nprocs=nprocs)
    print(f"mesh: {mesh}")
    print(f"patches: {pset.num_patches} on {nprocs} processes")

    # --- 2. physics: one group, 50% scattering, unit source -----------
    materials = MaterialMap.uniform(
        Material.isotropic(sigma_t=1.0, scatter_ratio=0.5), mesh.num_cells
    )
    source = np.ones((mesh.num_cells, 1))
    solver = SnSolver(
        pset,
        level_symmetric(4),
        materials,
        source,
        grain=64,
        strategy="slbd+slbd",
    )

    # --- 3. converge the flux (serial reference numerics) -------------
    result = solver.source_iteration(tol=1e-7)
    center = result.phi[mesh.linear_index((8, 8, 8)), 0]
    print(
        f"source iteration: {result.iterations} iterations, "
        f"converged={result.converged}"
    )
    print(f"center scalar flux: {center:.4f}  (infinite-medium bound 2.0)")
    print(f"particle balance residual: {solver.balance_residual(result):.2e}")

    # --- 4. the same sweep on the simulated parallel runtime ----------
    programs, faces = solver.build_programs()  # compute=True: real numerics
    runtime = DataDrivenRuntime(total_cores, machine=machine)
    report = runtime.run(programs, pset.patch_proc)
    phi_parallel, _ = solver.accumulate(faces)
    ref, _, _ = solver.sweep_once(mode="fast")
    assert np.array_equal(phi_parallel, ref), "parallel schedule changed physics!"

    print(f"\nsimulated sweep on {total_cores} cores "
          f"({nprocs} procs x {machine.cores_per_proc - 1} workers + master):")
    print(report.format_breakdown("  "))
    print(f"  executions={report.executions}  messages={report.messages}  "
          f"local streams={report.local_streams}")
    print("numerics identical under the parallel schedule: OK")


if __name__ == "__main__":
    main()

"""The framework's native BSP side: Jacobi heat diffusion on patches.

JSweep extends a patch-based BSP framework (JAxMIN); most numerical
algorithms stay BSP.  This example shows the classic component workflow
the paper describes in Sec. II-B: initialize -> numerical super-steps
with halo exchange -> reduction, solving a steady-state heat problem
(Jacobi iteration for the discrete Laplace equation) on a patch-
decomposed structured mesh with fixed hot/cold ends.

Run:  python examples/bsp_heat.py
"""

import numpy as np

from repro import PatchSet, cube_structured
from repro.framework import (
    BSPExecutor,
    InitializeComponent,
    NumericalComponent,
    PatchField,
    ReductionComponent,
    build_interfaces,
)


def main() -> None:
    mesh = cube_structured(10, length=1.0)
    pset = PatchSet.from_structured(mesh, (5, 5, 5), nprocs=4)
    print(f"mesh: {mesh}, patches: {pset.num_patches}")

    it = build_interfaces(mesh)
    nbrs: dict[int, list[int]] = {}
    for a, b in zip(it.cell_a.tolist(), it.cell_b.tolist()):
        nbrs.setdefault(a, []).append(b)
        nbrs.setdefault(b, []).append(a)

    centers = mesh.cell_centers()
    hot = centers[:, 0] < 0.1  # x=0 plane held at 1
    cold = centers[:, 0] > 0.9  # x=1 plane held at 0

    def kernel(patch, local, gcells, ghost):
        slot = {int(c): i for i, c in enumerate(gcells)}
        out = np.empty_like(local)
        for i, c in enumerate(patch.cells):
            c = int(c)
            if hot[c]:
                out[i] = 1.0
            elif cold[c]:
                out[i] = 0.0
            else:
                acc, cnt = 0.0, 0
                for nb in nbrs[c]:
                    if pset.cell_patch[nb] == patch.id:
                        acc += local[pset.cell_local[nb]]
                    else:
                        acc += ghost[slot[nb]]
                    cnt += 1
                out[i] = acc / cnt
        return out

    field = PatchField(pset, name="temperature")
    InitializeComponent(lambda c: np.where(c[:, 0] < 0.1, 1.0, 0.0)).apply(field)

    report = BSPExecutor(tol=1e-7, max_steps=20_000).run(
        NumericalComponent(kernel), field
    )
    mean_t = ReductionComponent("sum").apply(field) / mesh.num_cells
    print(f"BSP Jacobi: {report.supersteps} super-steps, "
          f"converged={report.converged}, residual={report.residual:.2e}")
    print(f"halo traffic: {report.halo.messages} messages, "
          f"{report.halo.bytes} bytes "
          f"({report.halo.inter_proc_messages} inter-process)")
    print(f"mean temperature: {mean_t:.4f} (expect ~0.5 for a linear profile)")

    # Temperature along the x axis should be ~linear from 1 to 0.
    g = field.to_global()
    print("\nprofile along x (centerline):")
    for i in range(0, 10, 2):
        t = g[mesh.linear_index((i, 5, 5))]
        print(f"  x={centers[mesh.linear_index((i, 5, 5)), 0]:.2f}  T={t:.3f}")


if __name__ == "__main__":
    main()

"""Chaos campaign: seeded random fault-space search (robustness tier 2).

Runs N seeded random fault plans - mixing crashes with cascades,
stragglers, timed link partitions, and drop/duplicate/corrupt message
fates - over the {structured, unstructured} x {hybrid, mpi_only}
scenario matrix, with the invariant sanitizer armed on every run.

Every cell is held to the bitwise-exactness oracle: the faulty run's
flux must equal the fault-free reference byte for byte, and the run
must terminate watchdog-clean (no :class:`StallReport`).  Anything
less is a recovery bug, not a degraded result.

Seed-reproducibility contract: a cell's fault plan is a pure function
of ``(seed, nprocs)``; re-running a failing seed replays its exact
fault sequence on any machine (see :mod:`repro.chaos`).

Run standalone (used by CI as a smoke job)::

    PYTHONPATH=src python benchmarks/bench_chaos_campaign.py --smoke

``--seeds N`` sizes the campaign (default 50; smoke uses 10),
``--json PATH`` writes the per-campaign JSON summary, ``--adaptive``
arms every adaptive-resilience feature (RTT-estimated RTO, hedging,
speculation, backpressure, demotion) on every case - against the same
oracle, since adaptivity must never cost exactness.  ``--flapping``
extends the fault space with crash-restart-crash sequences and
``--membership`` arms the elastic-membership subsystem (heartbeat
detection instead of the oracle, incarnation fencing, restart/rejoin -
DESIGN.md §14) on every case, again against the same oracle.
``--check-hb [DIR]`` additionally holds every completed case to the
vector-clock happens-before checker (any race fails the cell; with
DIR, each case's HB record stream is exported for ``repro.analysis
check-trace``).
"""

from repro.chaos import KINDS, MODES, ChaosSpace, run_campaign
from repro.runtime import AdaptiveConfig, MembershipConfig

from _common import bench_args, print_series

FULL_SEEDS = 50
SMOKE_SEEDS = 10

#: The campaign's adaptive preset: everything on, with an inbox window
#: tight enough that flow control actually parks sends at this scale.
ADAPTIVE = AdaptiveConfig.all_on(inbox_credits=4)


def run_chaos_campaign(seeds: int = FULL_SEEDS, intensity: float = 0.5,
                       size: int = 8, adaptive: bool = False, hb=None,
                       flapping: bool = False, membership: bool = False):
    return run_campaign(
        range(seeds),
        space=ChaosSpace(intensity=intensity, flapping=flapping),
        size=size,
        adaptive=ADAPTIVE if adaptive else None, hb=hb,
        membership=MembershipConfig.all_on() if membership else None,
    )


def report(res) -> None:
    rows = []
    for kind in KINDS:
        for mode in MODES:
            cell = [c for c in res.cases if c.kind == kind and c.mode == mode]
            agg = {}
            for c in cell:
                for k, v in c.faults.items():
                    agg[k] = agg.get(k, 0) + v
            rows.append([
                f"{kind}-{mode}",
                len(cell),
                sum(1 for c in cell if c.ok),
                sum(1 for c in cell if c.stalled),
                agg.get("crashes", 0),
                agg.get("cascade_crashes", 0),
                agg.get("partition_drops", 0),
                agg.get("corruptions", 0),
                agg.get("retries", 0),
            ])
    print_series(
        "Chaos campaign - seeded random fault plans, bitwise-exact oracle",
        ["scenario", "cases", "exact", "stalls", "crashes", "cascaded",
         "partitioned", "corrupted", "retries"],
        rows,
    )
    for c in res.failures():
        print(f"  FAILED {c.kind}-{c.mode} seed={c.seed} "
              f"stalled={c.stalled} {c.error[:200]}")


def check(res, adaptive: bool = False, flapping: bool = False,
          membership: bool = False) -> None:
    # The headline robustness claim: every seeded fault mix recovers to
    # bitwise-exact flux, with zero watchdog stalls.
    assert res.passed == res.total, (
        f"{res.total - res.passed} of {res.total} chaos cases failed"
    )
    assert res.stalls == 0, f"{res.stalls} watchdog stalls"
    # The campaign actually exercised the fault machinery.
    agg = res.summary()["fault_totals"]
    assert agg.get("crashes", 0) > 0
    assert agg.get("retries", 0) > 0
    if adaptive:
        # ... and the adaptive machinery, when armed, actually fired.
        tot = {}
        for c in res.cases:
            for k, v in c.adaptive.items():
                tot[k] = tot.get(k, 0) + v
        for key in ("rtt_samples", "hedged_sends", "speculative_launches",
                    "backpressure_stalls"):
            assert tot.get(key, 0) > 0, f"adaptive campaign never hit {key}"
    if membership:
        # Detection ran oracle-free; with flapping, ranks came back.
        mtot = {}
        for c in res.cases:
            for k, v in c.membership.items():
                mtot[k] = mtot.get(k, 0) + v
        assert mtot.get("heartbeats", 0) > 0, "heartbeat plane never ran"
        assert mtot.get("suspicions", 0) > 0, "no crash was ever detected"
        if flapping:
            assert mtot.get("restarts", 0) > 0, "no rank ever restarted"
            assert mtot.get("rejoins", 0) > 0, "no rank ever rejoined"


try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="chaos")
    def test_chaos_campaign(benchmark):
        res = benchmark.pedantic(
            run_chaos_campaign, kwargs={"seeds": SMOKE_SEEDS},
            rounds=1, iterations=1,
        )
        report(res)
        check(res)

    @pytest.mark.benchmark(group="chaos")
    def test_chaos_campaign_adaptive(benchmark):
        res = benchmark.pedantic(
            run_chaos_campaign,
            kwargs={"seeds": SMOKE_SEEDS, "adaptive": True},
            rounds=1, iterations=1,
        )
        report(res)
        check(res, adaptive=True)


if __name__ == "__main__":
    args = bench_args(
        "Chaos campaign: N seeded random fault plans over the scenario "
        "matrix, asserting bitwise-exact recovery (--smoke for the "
        "CI-sized campaign, --json to write the summary)",
        extra=lambda ap: (
            ap.add_argument("--seeds", type=int, default=None,
                            help="campaign size (default 50; smoke 10)"),
            ap.add_argument("--json", metavar="PATH", default=None,
                            help="write the per-campaign JSON summary"),
            ap.add_argument("--intensity", type=float, default=0.5,
                            help="fault-space intensity in (0, 1]"),
            ap.add_argument("--adaptive", action="store_true",
                            help="arm all adaptive-resilience features "
                                 "(adaptive RTO, hedging, speculation, "
                                 "backpressure, demotion)"),
            ap.add_argument("--flapping", action="store_true",
                            help="extend the fault space with crash-"
                                 "restart-crash (flapping) sequences"),
            ap.add_argument("--membership", action="store_true",
                            help="arm elastic membership on every case "
                                 "(heartbeat detection, incarnation "
                                 "fencing, restart/rejoin)"),
        ),
    )
    seeds = args.seeds if args.seeds is not None else (
        SMOKE_SEEDS if args.smoke else FULL_SEEDS
    )
    res = run_chaos_campaign(seeds=seeds, intensity=args.intensity,
                             adaptive=args.adaptive, hb=args.check_hb,
                             flapping=args.flapping,
                             membership=args.membership)
    report(res)
    if args.check_hb is not None:
        print(f"hb: {res.total} campaign runs checked, "
              f"{sum(c.races for c in res.cases)} race(s)")
    check(res, adaptive=args.adaptive, flapping=args.flapping,
          membership=args.membership)
    if args.json:
        res.to_json(args.json)
        print(f"summary: {args.json}")
    print(f"\nchaos campaign: OK ({res.passed}/{res.total} exact, "
          f"{res.stalls} stalls)")

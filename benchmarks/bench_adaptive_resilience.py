"""Adaptive resilience: does adaptivity buy virtual time? (robustness)

Head-to-head on identical seeded fault plans: the fixed-RTO baseline
(every retransmit timer at ``RecoveryConfig.ack_timeout``) vs the
adaptive stack in two doses - RTT-estimated RTO with hedged
retransmits, then that plus speculative straggler re-execution.  Two
plan families stress the two mechanisms:

* **straggler-heavy** - long multiplicative slowdown windows on a
  subset of processes plus a lossy wire; speculation should clone the
  straggling programs onto fast survivors, and the RTT estimator
  should stop the lossy wire from paying the full fixed timeout per
  drop;
* **partition-heavy** - timed directed link partitions plus drops; the
  adaptive RTO recovers faster once a partition heals because its
  timers track the real round-trip instead of a worst-case constant.

Every run is held to the same oracle as the chaos campaign: flux
bitwise-identical to the fault-free reference.  Adaptivity that
changes a single bit is a bug, not a trade-off (the headline claim of
the speculation commit protocol).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_adaptive_resilience.py

Writes ``BENCH_adaptive_resilience.json`` at the repo root (override
with ``--json``); ``--trace`` dumps per-run Chrome traces.
"""

import json
import os

import numpy as np

from repro.chaos import build_scenario
from repro.runtime import (
    AdaptiveConfig,
    DataDrivenRuntime,
    FaultPlan,
    LinkPartition,
    RecoveryConfig,
    StragglerWindow,
)

from _common import bench_args, check_hb, print_series, write_chrome_trace

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_adaptive_resilience.json")

#: Virtual-time window the fault plans land in (the chaos horizon).
HZ = 1e-3

#: The three contenders.  Same RecoveryConfig everywhere, so the only
#: difference is the adaptive layer's dose.
CONFIGS = (
    ("fixed-rto", None),
    ("adaptive-rto", AdaptiveConfig(adaptive_rto=True, hedging=True)),
    ("adaptive+spec", AdaptiveConfig(adaptive_rto=True, hedging=True,
                                     speculation=True)),
)


def straggler_plan(nprocs: int, seed: int = 11) -> FaultPlan:
    """Straggler-heavy: two processes slowed 4-6x for most of the run,
    over a lossy wire that keeps the retransmit path hot."""
    slow = (0, nprocs - 1)
    windows = tuple(
        StragglerWindow(p, 0.05 * HZ * (i + 1), 0.9 * HZ, 4.0 + i)
        for i, p in enumerate(slow)
    )
    return FaultPlan(stragglers=windows, p_drop=0.06, seed=seed)


def partition_plan(nprocs: int, seed: int = 23) -> FaultPlan:
    """Partition-heavy: two timed directed cuts plus drops; every loss
    is recovered through the retransmit timers under test."""
    cuts = (
        LinkPartition(0, 1 % nprocs, 0.1 * HZ, 0.35 * HZ),
        LinkPartition(nprocs - 1, 0, 0.3 * HZ, 0.6 * HZ),
    )
    return FaultPlan(partitions=cuts, p_drop=0.05, seed=seed)


PLANS = (("straggler", straggler_plan), ("partition", partition_plan))
SCENARIOS = (("structured", "hybrid"), ("unstructured", "mpi_only"))


def run_matrix(trace_dir: str | None = None, hb=None) -> list[dict]:
    """The full scenario x plan x config grid; one row per run."""
    rows: list[dict] = []
    for kind, mode in SCENARIOS:
        machine, cores, pset, solver = build_scenario(kind, mode)
        nprocs = machine.layout(cores, mode).nprocs
        reference, _, _ = solver.sweep_once(mode="fast")
        for plan_name, make_plan in PLANS:
            plan = make_plan(nprocs)
            for cfg_name, acfg in CONFIGS:
                progs, faces = solver.build_programs(resilient=True)
                rt = DataDrivenRuntime(
                    cores, machine=machine, mode=mode, faults=plan,
                    recovery=RecoveryConfig(), adaptive=acfg,
                    trace=trace_dir is not None or hb is not None,
                )
                rep = rt.run(progs, pset.patch_proc)
                phi, _ = solver.accumulate(faces)
                exact = bool(
                    phi.tobytes()
                    == np.ascontiguousarray(reference).tobytes()
                )
                row = {
                    "scenario": f"{kind}-{mode}",
                    "plan": plan_name,
                    "config": cfg_name,
                    "makespan": rep.makespan,
                    "exact": exact,
                    "retries": rep.retries,
                    "adaptive": rep.adaptive_summary(),
                }
                rows.append(row)
                if trace_dir is not None:
                    write_chrome_trace(
                        rep, f"adaptive_{kind}_{mode}_{plan_name}_{cfg_name}",
                        trace_dir,
                    )
                check_hb(
                    rep, f"adaptive_{kind}_{mode}_{plan_name}_{cfg_name}", hb
                )
    return rows


def report(rows: list[dict]) -> None:
    table = []
    for r in rows:
        a = r["adaptive"]
        table.append([
            r["scenario"], r["plan"], r["config"],
            f"{r['makespan'] * 1e3:.3f}ms",
            "yes" if r["exact"] else "NO",
            r["retries"],
            a.get("hedged_sends", 0),
            a.get("speculative_wins", 0),
        ])
    print_series(
        "Adaptive resilience - fixed vs adaptive RTO vs +speculation "
        "(same seeded faults, bitwise-exact oracle)",
        ["scenario", "plan", "config", "makespan", "exact", "retries",
         "hedged", "spec-wins"],
        table,
    )


def _makespan(rows: list[dict], scenario: str, plan: str, config: str):
    return next(
        r["makespan"] for r in rows
        if (r["scenario"], r["plan"], r["config"]) == (scenario, plan, config)
    )


def check(rows: list[dict]) -> None:
    # Zero correctness deviations, ever: adaptivity must be invisible
    # to the flux.
    bad = [r for r in rows if not r["exact"]]
    assert not bad, f"{len(bad)} runs deviated from the reference flux"
    # The estimator actually warmed up and the mechanisms fired.
    armed = [r for r in rows if r["config"] != "fixed-rto"]
    assert all(r["adaptive"].get("rtt_samples", 0) > 0 for r in armed)
    assert any(r["adaptive"].get("speculative_wins", 0) > 0 for r in rows)
    # The headline: adaptive RTO + speculation beats the fixed-RTO
    # baseline on every straggler-heavy cell.
    for kind, mode in SCENARIOS:
        sc = f"{kind}-{mode}"
        fixed = _makespan(rows, sc, "straggler", "fixed-rto")
        spec = _makespan(rows, sc, "straggler", "adaptive+spec")
        assert spec < fixed, (
            f"{sc}/straggler: adaptive+spec {spec:.6f}s is not below "
            f"fixed-rto {fixed:.6f}s"
        )


try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="adaptive")
    def test_adaptive_resilience(benchmark):
        rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
        report(rows)
        check(rows)


if __name__ == "__main__":
    args = bench_args(
        "Adaptive resilience: fixed vs adaptive RTO vs +speculation on "
        "seeded straggler- and partition-heavy fault plans, asserting "
        "bitwise-exact flux and a makespan win for the adaptive stack",
        extra=lambda ap: (
            ap.add_argument("--json", metavar="PATH", default=JSON_PATH,
                            help="where to write the JSON summary"),
        ),
    )
    rows = run_matrix(trace_dir=args.trace, hb=args.check_hb)
    report(rows)
    check(rows)
    out = os.path.normpath(args.json)
    with open(out, "w") as fh:
        json.dump({"rows": rows}, fh, indent=1)
    print(f"\nsummary: {out}")
    fixed = [r["makespan"] for r in rows
             if r["plan"] == "straggler" and r["config"] == "fixed-rto"]
    spec = [r["makespan"] for r in rows
            if r["plan"] == "straggler" and r["config"] == "adaptive+spec"]
    gain = 100.0 * (1.0 - sum(spec) / sum(fixed))
    print(f"adaptive resilience: OK (straggler makespan -{gain:.1f}% "
          f"vs fixed RTO, all runs bitwise-exact)")

"""Durability campaign: kill-resume exactness and snapshot overhead.

Runs the durable-execution harness over a small scenario matrix
(structured / unstructured mesh, hybrid / mpi_only layout, fault-free /
faulty): for each cell one uninterrupted reference run pins the
fingerprint, one snapshot-armed run measures the overhead of the
cadence (count, bytes, wall-time %), and a sweep of seeded host-crash
cut points each kill the run mid-loop and restart it from disk,
asserting the resumed outcome is **bitwise-identical** to the
reference (makespan, breakdown, fault counters, flux).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_durability.py

Writes ``BENCH_durability.json`` at the repo root (override with
``--json``).  ``--smoke`` runs the CI-sized campaign (fewer cells and
cut points).  ``--trace`` / ``--check-hb`` arm event tracing on each
cell's *reference* run (Chrome-trace export / vector-clock replay);
the snapshot-armed and kill-resume runs stay untraced because the
trace buffer is not crash-consistent (``check_persist`` enforces it).
"""

import json
import os
import tempfile
import time

from repro.framework import PatchSet
from repro.mesh import cube_structured, disk_tri_mesh
from repro.persist import SnapshotManager, kill_and_resume, report_fingerprint
from repro.persist.snapshot import FluxArrayState
from repro.runtime import CrashFault, DataDrivenRuntime, FaultPlan, Machine
from repro.sweep import level_symmetric
from repro.sweep.materials import Material, MaterialMap
from repro.sweep.solver import SnSolver

import numpy as np

from _common import bench_args, check_hb, print_series, write_chrome_trace

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_durability.json")

MACHINE = Machine(cores_per_proc=4)

#: cell name -> (mesh kind, mode, faults on)
FULL_CELLS = {
    "structured-hybrid-clean": ("structured", "hybrid", False),
    "structured-hybrid-faulty": ("structured", "hybrid", True),
    "structured-mpi_only-faulty": ("structured", "mpi_only", True),
    "unstructured-hybrid-clean": ("unstructured", "hybrid", False),
    "unstructured-mpi_only-faulty": ("unstructured", "mpi_only", True),
}
SMOKE_CELLS = {
    "structured-hybrid-faulty": ("structured", "hybrid", True),
    "unstructured-hybrid-clean": ("unstructured", "hybrid", False),
}

FULL_FRACS = (0.05, 0.25, 0.5, 0.75, 0.95)
SMOKE_FRACS = (0.1, 0.6)


def _fault_plan():
    return FaultPlan(
        crashes=(CrashFault(proc=1, time=150e-6),),
        p_drop=0.05, p_duplicate=0.05, seed=7,
    )


def _solver(kind, nprocs):
    if kind == "structured":
        mesh = cube_structured(8, length=4.0)
        pset = PatchSet.from_structured(mesh, (4, 4, 4), nprocs=nprocs)
        sn = 2
    else:
        mesh = disk_tri_mesh(8)
        pset = PatchSet.from_unstructured(mesh, 20, nprocs=nprocs)
        sn = 4
    mm = MaterialMap.uniform(
        Material.isotropic(1.0, 0.5), mesh.num_cells
    )
    q = np.ones((mesh.num_cells, 1))
    return pset, SnSolver(pset, level_symmetric(sn), mm, q, grain=16)


def _factory(kind, mode, faulty):
    cores = 16 if mode == "hybrid" else 8
    nprocs = MACHINE.layout(cores, mode).nprocs
    plan = _fault_plan() if faulty else None

    def factory(trace=False):
        pset, s = _solver(kind, nprocs)
        progs, faces = s.build_programs(resilient=faulty)
        rt = DataDrivenRuntime(cores, machine=MACHINE, mode=mode,
                               faults=plan, trace=trace)
        factory.extra = (s, faces)
        return rt, progs, pset.patch_proc, FluxArrayState(faces)

    return factory


def _fingerprint(factory, report):
    s, faces = factory.extra
    phi, _ = s.accumulate(faces)
    return report_fingerprint(report, flux=phi)


def run_cell(name, kind, mode, faulty, fracs, trace_dir=None, hb=None):
    f = _factory(kind, mode, faulty)
    # Reference: uninterrupted, snapshotting off.  Tracing rides the
    # reference run only - check_persist rejects trace+persist (the
    # trace buffer is not crash-consistent), so the snapshot-armed and
    # kill-resume runs below always run untraced.
    want_trace = trace_dir is not None or hb is not None
    rt, progs, pp, _app = f(trace=want_trace)
    t0 = time.perf_counter()
    ref = rt.run(progs, pp)
    ref_wall = time.perf_counter() - t0
    ref_fp = _fingerprint(f, ref)
    if trace_dir is not None:
        write_chrome_trace(ref, f"durability_{name}_ref", trace_dir)
    check_hb(ref, f"durability_{name}_ref", hb)
    every = max(20, ref.events // 6)
    # Snapshot-armed run (no kill): the cadence overhead.
    rt, progs, pp, app = f()
    with tempfile.TemporaryDirectory() as d:
        mgr = SnapshotManager(d, every=every, app_state=app, fsync=False)
        t0 = time.perf_counter()
        rep = rt.run(progs, pp, persist=mgr)
        armed_wall = time.perf_counter() - t0
    if _fingerprint(f, rep) != ref_fp:
        raise SystemExit(f"{name}: snapshot-armed run diverged")
    # The kill campaign: seeded cuts, restart from disk, compare.
    cuts = []
    for frac in fracs:
        kill_at = max(1, int(frac * ref.events))
        with tempfile.TemporaryDirectory() as d:
            t0 = time.perf_counter()
            rep2, _mgr, killed = kill_and_resume(
                f, kill_at=kill_at, every=every, workdir=d
            )
            wall = time.perf_counter() - t0
        exact = _fingerprint(f, rep2) == ref_fp
        cuts.append({
            "kill_at": kill_at, "killed": killed, "exact": exact,
            "wall_s": wall,
        })
    return {
        "cell": name,
        "events": ref.events,
        "every": every,
        "ref_wall_s": ref_wall,
        "armed_wall_s": armed_wall,
        "overhead_pct": (
            100.0 * (armed_wall - ref_wall) / ref_wall if ref_wall > 0
            else 0.0
        ),
        "snapshots": rep.snapshots,
        "snapshot_bytes": rep.snapshot_bytes,
        "cuts": cuts,
    }


def run_campaign(smoke=False, trace_dir=None, hb=None):
    cells = SMOKE_CELLS if smoke else FULL_CELLS
    fracs = SMOKE_FRACS if smoke else FULL_FRACS
    return [
        run_cell(name, *cfg, fracs, trace_dir=trace_dir, hb=hb)
        for name, cfg in sorted(cells.items())
    ]


def report(rows):
    table = [
        [
            r["cell"], r["events"], r["snapshots"],
            f"{r['snapshot_bytes'] / 1024:.0f}KiB",
            f"{r['overhead_pct']:+.0f}%",
            sum(1 for c in r["cuts"] if c["killed"]),
            "yes" if all(c["exact"] for c in r["cuts"]) else "NO",
        ]
        for r in rows
    ]
    print_series(
        "Durability - snapshot cadence overhead and kill-resume "
        "exactness (bitwise vs the uninterrupted reference)",
        ["cell", "events", "snaps", "bytes", "overhead", "kills", "exact"],
        table,
    )


def check(rows):
    for r in rows:
        for c in r["cuts"]:
            assert c["killed"], (
                f"{r['cell']}: kill at {c['kill_at']} never fired"
            )
            assert c["exact"], (
                f"{r['cell']}: resume from cut {c['kill_at']} diverged "
                "from the uninterrupted reference"
            )
        assert r["snapshots"] >= 2, f"{r['cell']}: cadence never fired"
        assert r["snapshot_bytes"] > 0


try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="durability")
    def test_durability_campaign(benchmark):
        rows = benchmark.pedantic(
            run_campaign, kwargs={"smoke": True}, rounds=1, iterations=1
        )
        report(rows)
        check(rows)


if __name__ == "__main__":
    args = bench_args(
        "Durability campaign: snapshot overhead and seeded kill-resume "
        "exactness across the scenario matrix",
        extra=lambda ap: (
            ap.add_argument("--json", metavar="PATH", default=JSON_PATH,
                            help="where to write the JSON summary"),
        ),
    )
    rows = run_campaign(smoke=args.smoke, trace_dir=args.trace,
                        hb=args.check_hb)
    report(rows)
    check(rows)
    out = os.path.normpath(args.json)
    with open(out, "w") as fh:
        json.dump({"rows": rows}, fh, indent=1)
    print(f"\nsummary: {out}")
    kills = sum(1 for r in rows for c in r["cuts"] if c["killed"])
    print(f"durability: OK ({kills} seeded host crashes, every resume "
          "bitwise-exact)")

"""Ablation (Sec. V-E): coarsened-graph sweeps vs per-iteration DAG sweeps.

Paper claims: (i) building CG costs less than one DAG-based sweep
iteration, and (ii) sweeping on CG instead of the DAG speeds up the
*scheduling-bound* portion by 7-10x.

Reproduction: a scheduling-heavy configuration (cheap kernel relative
to bookkeeping, the regime of the claim).  We measure the DAG sweep
and the CG sweep on the DES runtime and compare (a) bookkeeping
(graph_op + sched) core-seconds - the 7-10x claim's denominator -
(b) end-to-end makespan, and (c) the wall-clock cost of building CG
vs one scheduling sweep.
"""

import time

import pytest

from repro.core import SerialEngine
from repro.runtime import CostModel, DataDrivenRuntime

from _common import MACHINE, koba_app, print_series

CORES = 48
# Scheduling-bound regime: kernel per vertex comparable to bookkeeping
# per edge (e.g. a cheap one-group kernel on a fast core).
CHEAP_KERNEL = CostModel(t_vertex=0.2e-6)


def run_ablation():
    app = koba_app(20, CORES, patch=5, grain=100)
    solver = app.solver
    pset = app.pset

    # DAG sweep.
    programs, _ = solver.build_programs(compute=False)
    dag = DataDrivenRuntime(CORES, machine=MACHINE, cost=CHEAP_KERNEL).run(
        programs, pset.patch_proc
    )

    # CG build (wall-clock) vs one scheduling sweep (wall-clock).
    t0 = time.perf_counter()
    programs, _ = solver.build_programs(compute=False, record_clusters=True)
    eng = SerialEngine()
    for prog in programs:
        eng.add_program(prog)
    eng.run()
    t_sweep_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    from repro.sweep.coarsened import build_coarsened

    cgs = build_coarsened(solver.topology, programs)
    t_build_wall = time.perf_counter() - t0

    # CG sweep.
    cg_programs, _ = solver.build_coarsened_programs(cgs, compute=False)
    cg = DataDrivenRuntime(CORES, machine=MACHINE, cost=CHEAP_KERNEL).run(
        cg_programs, pset.patch_proc
    )

    def book(rep):
        b = rep.breakdown.by_category
        return b["graph_op"] + b["sched"] + b["pack"] + b["unpack"]

    return {
        "dag_ms": dag.makespan * 1e3,
        "cg_ms": cg.makespan * 1e3,
        "dag_book": book(dag),
        "cg_book": book(cg),
        "dag_exec": dag.executions,
        "cg_exec": cg.executions,
        "build_wall": t_build_wall,
        "sweep_wall": t_sweep_wall,
    }


@pytest.mark.benchmark(group="ablation-cg")
def test_coarsened_graph_ablation(benchmark):
    r = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    book_ratio = r["dag_book"] / r["cg_book"]
    print_series(
        "Ablation - DAG vs coarsened graph (Sec. V-E; paper: CG 7-10x "
        "on the scheduling-bound portion, build < 1 sweep)",
        ["variant", "makespan_ms", "bookkeeping_cs", "executions"],
        [
            ["DAG", r["dag_ms"], r["dag_book"], r["dag_exec"]],
            ["CG", r["cg_ms"], r["cg_book"], r["cg_exec"]],
            ["ratio", r["dag_ms"] / r["cg_ms"], book_ratio,
             r["dag_exec"] / r["cg_exec"]],
        ],
    )
    print(f"CG build wall time: {r['build_wall']:.3f}s vs one sweep "
          f"{r['sweep_wall']:.3f}s")
    # The scheduling-bound portion shrinks by a large factor.
    assert book_ratio > 3.0, f"bookkeeping ratio only {book_ratio:.1f}"
    # End-to-end the CG sweep is faster.
    assert r["cg_ms"] < r["dag_ms"]
    # Build cost comparable to (paper: below) one sweep iteration.
    # Wall-clock comparison; allow slack for machine noise.
    assert r["build_wall"] < 2.0 * r["sweep_wall"]

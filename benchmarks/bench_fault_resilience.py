"""Fault resilience: checkpoint overhead and makespan degradation.

The robustness counterpart of the paper's evaluation: the DES cluster
runs the same data-driven sweep (scheduling only) under an increasingly
hostile network and under a process crash, and reports

* the *zero-fault tax*: makespan of a run with the full recovery
  machinery armed (acks, retransmit timers, periodic checkpoints) but
  no injected faults, relative to the plain runtime;
* the *degradation curve*: makespan vs message-drop probability, with
  retransmissions recovering every lost stream;
* the *crash row*: a mid-run fail-stop of one process, its patches
  re-assigned to survivors and replayed from checkpoints.

Shape to reproduce: the zero-fault tax stays within a few percent, the
degradation curve rises smoothly with the drop rate (no cliffs: retry
backoff absorbs losses), and the crash run completes all work with a
bounded makespan penalty.

Run standalone (used by CI as a smoke test)::

    PYTHONPATH=src python benchmarks/bench_fault_resilience.py --smoke

``--trace DIR`` additionally exports one Chrome-trace JSON per DES run.
"""

import numpy as np

from repro import DataDrivenRuntime, PatchSet, cube_structured
from repro.runtime import CrashFault, FaultPlan, RecoveryConfig
from repro.sweep import Material, MaterialMap, SnSolver, level_symmetric

from _common import MACHINE, bench_args, check_hb, print_series, write_chrome_trace

DROP_RATES = [0.0, 0.02, 0.05, 0.10]


def _build(cores: int, n: int):
    mesh = cube_structured(n, length=float(n))
    nprocs = MACHINE.layout(cores, "hybrid").nprocs
    pset = PatchSet.from_structured(mesh, (4, 4, 4), nprocs=nprocs)
    mm = MaterialMap.uniform(Material.isotropic(1.0, 0.5), mesh.num_cells)
    solver = SnSolver(
        pset, level_symmetric(4), mm, np.ones((mesh.num_cells, 1)), grain=64
    )
    return pset, solver


def _run(cores: int, n: int, plan=None, recovery=None, resilient=False,
         trace_dir=None, label="", hb=None):
    pset, solver = _build(cores, n)
    progs, _ = solver.build_programs(compute=False, resilient=resilient)
    rt = DataDrivenRuntime(
        cores, machine=MACHINE, faults=plan, recovery=recovery,
        trace=trace_dir is not None or hb is not None,
    )
    rep = rt.run(progs, pset.patch_proc)
    if trace_dir is not None:
        write_chrome_trace(rep, f"fault-resilience-{label}", trace_dir)
    check_hb(rep, f"fault-resilience-{label}", hb)
    return rep


def run_fault_resilience(cores: int = 48, n: int = 16, trace_dir=None,
                         hb=None):
    base = _run(cores, n, trace_dir=trace_dir, label="plain", hb=hb)

    # -- zero-fault tax: recovery machinery armed, nothing injected ----
    armed = _run(cores, n, plan=FaultPlan(seed=1), recovery=RecoveryConfig(),
                 trace_dir=trace_dir, label="armed", hb=hb)
    overhead_rows = [
        ["plain", base.makespan * 1e3, 0.0, 0, 0.0],
        [
            "armed",
            armed.makespan * 1e3,
            (armed.makespan / base.makespan - 1.0) * 100.0,
            armed.checkpoints,
            armed.recovery_fraction() * 100.0,
        ],
    ]

    # -- degradation curve over message-drop probability ---------------
    curve_rows = []
    for p in DROP_RATES:
        plan = FaultPlan(p_drop=p, p_duplicate=p / 2.0, seed=42)
        rep = _run(cores, n, plan=plan, trace_dir=trace_dir,
                   label=f"drop{p:g}", hb=hb)
        curve_rows.append([
            p,
            rep.makespan * 1e3,
            rep.makespan / base.makespan,
            rep.drops,
            rep.duplicates,
            rep.retries,
        ])

    # -- crash failover ------------------------------------------------
    plan = FaultPlan(
        crashes=(CrashFault(proc=1, time=base.makespan * 0.3),),
        p_drop=0.02, p_duplicate=0.01, seed=7,
    )
    crash = _run(cores, n, plan=plan, resilient=True,
                 trace_dir=trace_dir, label="crash", hb=hb)
    crash_rows = [[
        crash.makespan * 1e3,
        crash.makespan / base.makespan,
        crash.failover_time * 1e6,
        crash.reexecutions,
        crash.recovery_fraction() * 100.0,
    ]]
    return overhead_rows, curve_rows, crash_rows


def report(overhead_rows, curve_rows, crash_rows) -> None:
    print_series(
        "Fault resilience - zero-fault checkpoint overhead",
        ["config", "makespan_ms", "overhead_%", "checkpoints", "recovery_%"],
        overhead_rows,
    )
    print_series(
        "Fault resilience - makespan degradation vs drop rate",
        ["p_drop", "makespan_ms", "vs_base", "drops", "dups", "retries"],
        curve_rows,
    )
    print_series(
        "Fault resilience - crash of 1 process mid-run",
        ["makespan_ms", "vs_base", "failover_us", "reexecutions",
         "recovery_%"],
        crash_rows,
    )


def check(overhead_rows, curve_rows, crash_rows) -> None:
    # Zero-fault tax within the checkpoint overhead budget.
    assert overhead_rows[1][2] < 10.0, "checkpoint overhead above 10%"
    # Lossy runs never beat the reliable run; losses were all recovered.
    for row in curve_rows[1:]:
        assert row[2] >= 1.0
        assert row[5] > 0  # retries happened...
    assert curve_rows[0][3] == 0  # ...but p=0 dropped nothing
    # The crash was survived at a finite, accounted cost.
    assert crash_rows[0][1] >= 1.0
    assert crash_rows[0][3] > 0  # work was re-executed from checkpoints


try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="fault-resilience")
    def test_fault_resilience(benchmark):
        rows = benchmark.pedantic(run_fault_resilience, rounds=1, iterations=1)
        report(*rows)
        check(*rows)


if __name__ == "__main__":
    args = bench_args(
        "Fault-resilience benchmark: checkpoint overhead, drop-rate "
        "degradation curve, crash failover (--smoke for the CI-sized "
        "run, --trace to export Chrome-trace JSON per run)"
    )
    rows = (
        run_fault_resilience(cores=24, n=12, trace_dir=args.trace,
                             hb=args.check_hb)
        if args.smoke
        else run_fault_resilience(trace_dir=args.trace, hb=args.check_hb)
    )
    report(*rows)
    check(*rows)
    print("\nfault-resilience benchmark: OK")

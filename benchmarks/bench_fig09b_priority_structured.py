"""Fig. 9b: priority-strategy pairs on structured meshes vs core count.

Paper setup: SnSweep-S comparing LDCP+LDCP, SLBD+SLBD and LDCP+SLBD
over 96..768 cores; SLBD-based vertex ordering performs best.

Scaled setup: 24^3 cube, S2, patch 6^3, 24..192 simulated cores.
Shape to reproduce: strategies diverge as cores grow; a strategy pair
with SLBD vertex ordering is never the worst at the largest scale.
"""

import numpy as np
import pytest

from repro import DataDrivenRuntime, PatchSet, cube_structured
from repro.sweep import Material, MaterialMap, SnSolver, level_symmetric

from _common import MACHINE, bench_args, maybe_profile, print_series

STRATEGIES = ["ldcp+ldcp", "slbd+slbd", "ldcp+slbd"]
CORES = [24, 48, 96, 192]


def run_fig09b() -> dict[str, list[float]]:
    mesh = cube_structured(24, length=24.0)
    mm = MaterialMap.uniform(Material.isotropic(1.0, 0.5), mesh.num_cells)
    out: dict[str, list[float]] = {s: [] for s in STRATEGIES}
    for cores in CORES:
        nprocs = MACHINE.layout(cores, "hybrid").nprocs
        pset = PatchSet.from_structured(mesh, (6, 6, 6), nprocs=nprocs)
        for strat in STRATEGIES:
            solver = SnSolver(
                pset, level_symmetric(2), mm,
                np.ones((mesh.num_cells, 1)), strategy=strat, grain=100,
            )
            programs, _ = solver.build_programs(compute=False)
            rep = DataDrivenRuntime(cores, machine=MACHINE).run(
                programs, pset.patch_proc
            )
            out[strat].append(rep.makespan * 1e3)
    return out


@pytest.mark.benchmark(group="fig09b")
def test_fig09b_priority_strategies_structured(benchmark):
    out = benchmark.pedantic(run_fig09b, rounds=1, iterations=1)
    rows = [
        [c] + [out[s][i] for s in STRATEGIES] for i, c in enumerate(CORES)
    ]
    print_series(
        "Fig. 9b - priority strategies (structured, time in ms)",
        ["cores"] + [s.upper() for s in STRATEGIES],
        rows,
    )
    # Every strategy scales: largest-core run beats smallest-core run.
    for s in STRATEGIES:
        assert out[s][-1] < out[s][0]
    # At the largest scale a SLBD-vertex strategy is not the worst.
    last = {s: out[s][-1] for s in STRATEGIES}
    worst = max(last, key=last.get)
    assert worst == "ldcp+ldcp" or last[worst] < 1.1 * min(last.values()), (
        f"expected an SLBD vertex ordering to win at scale, got {last}"
    )
if __name__ == "__main__":
    args = bench_args("Fig. 9b: priority strategies (structured)")
    out = maybe_profile(run_fig09b, "fig09b", args.profile)
    rows = [[c] + [out[s][i] for s in STRATEGIES]
            for i, c in enumerate(CORES)]
    print_series("Fig. 9b - priority strategies (structured)",
                 ["cores"] + list(STRATEGIES), rows)

"""Hot-path wall-clock benchmark: the lean event core refactor.

Times the paper's strong-scaling benchmarks (Fig. 12 structured,
Fig. 14 unstructured) end to end on the host clock and compares
against the pre-refactor seed baselines measured on this container at
identical scales.  Also reports ``RunReport.perf_summary()`` for one
representative configuration per mesh family (events per host-second,
peak event-heap occupancy, per-layer event counts) and asserts the
vectorized-kernel floor: ``fast-level`` must beat the scalar ``fast``
sweep on wall clock (their bitwise identity is pinned in
``tests/test_kernels_level.py``).

Writes ``BENCH_hot_path.json`` at the repo root (override with
``--json``).  ``--smoke`` runs the CI-sized configurations; the
committed JSON carries the full-scale numbers.

Wall times are stamped *here*, never inside ``src/repro`` - the
simulation is a pure function of its inputs and must not read the
host clock (lint rule DET001).
"""

import json
import os
import time

import numpy as np

from _common import KOBA_MIDDLE, ball_app, bench_args, koba_app, print_series
from bench_fig12_strong_structured import (
    run_fig12a, run_fig12a_smoke, run_fig12b,
)
from bench_fig14_strong_unstructured import _strong, run_fig14a, run_fig14b

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_hot_path.json")

#: Pre-refactor wall clock (seconds) of the same entry points at the
#: same scales, measured on this container at the seed revision before
#: the lean-event-core refactor landed.
SEED_BASELINE_S = {
    "fig12a": 11.77,
    "fig12b": 27.82,
    "fig14a": 22.62,
    "fig14b": 76.91,
}


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _perf_summary(app, cores: int) -> dict:
    """One representative DES run with the wall clock stamped around it."""
    t0 = time.perf_counter()
    rep = app.sweep_report(cores)
    rep.wall_time = time.perf_counter() - t0
    return rep.perf_summary()


def kernel_floor(n: int = 14) -> dict:
    """Scalar vs level-vectorized sweep kernel; the vectorized path
    (the ``sweep_once`` default) must win on wall clock."""
    from repro.framework import PatchSet
    from repro.mesh import cube_structured
    from repro.sweep import Material, MaterialMap, SnSolver, level_symmetric

    mesh = cube_structured(n, float(n) / 2.0)
    ps = PatchSet.single_patch(mesh)
    mm = MaterialMap.uniform(
        Material.isotropic(1.0, 0.5, groups=2), mesh.num_cells
    )
    s = SnSolver(ps, level_symmetric(4), mm, np.ones((mesh.num_cells, 2)))
    s.sweep_once(mode="fast")  # warm topology/adjacency caches
    s.sweep_once(mode="fast-level")
    t_scalar = _timed(lambda: s.sweep_once(mode="fast"))
    t_vec = _timed(lambda: s.sweep_once(mode="fast-level"))
    assert t_vec < t_scalar, (
        f"vectorized kernel floor violated: fast-level {t_vec:.3f}s vs "
        f"fast {t_scalar:.3f}s"
    )
    return {
        "cells": mesh.num_cells,
        "scalar_s": round(t_scalar, 4),
        "vectorized_s": round(t_vec, 4),
        "speedup": round(t_scalar / t_vec, 2),
    }


def run_hot_path(smoke: bool = False) -> dict:
    if smoke:
        benches = {
            "fig12a_smoke": run_fig12a_smoke,
            "fig14a_smoke": lambda: _strong(14, [24, 48], patch_size=120),
        }
    else:
        benches = {
            "fig12a": run_fig12a,
            "fig12b": run_fig12b,
            "fig14a": run_fig14a,
            "fig14b": run_fig14b,
        }
    timings = {}
    for name, fn in benches.items():
        dt = _timed(fn)
        base = SEED_BASELINE_S.get(name)
        timings[name] = {
            "baseline_s": base,
            "after_s": round(dt, 2),
            "speedup": round(base / dt, 2) if base else None,
        }
    # Representative events/sec, one configuration per mesh family.
    if smoke:
        perf = {
            "fig12a@48": _perf_summary(koba_app(KOBA_MIDDLE, 48), 48),
            "fig14a@48": _perf_summary(
                ball_app(14, 48, patch_size=120), 48
            ),
        }
    else:
        perf = {
            "fig12a@384": _perf_summary(koba_app(KOBA_MIDDLE, 384), 384),
            "fig14a@384": _perf_summary(
                ball_app(14, 384, patch_size=120), 384
            ),
        }
    return {
        "benchmark": "hot_path",
        "smoke": smoke,
        "timings": timings,
        "perf": perf,
        "kernel_floor": kernel_floor(10 if smoke else 14),
    }


def main(argv=None) -> None:
    args = bench_args(
        "Hot-path wall clock: lean event core vs seed baselines",
        argv,
        extra=lambda ap: ap.add_argument(
            "--json", default=JSON_PATH, metavar="PATH",
            help="where to write the JSON summary",
        ),
    )
    result = run_hot_path(smoke=args.smoke)
    rows = [
        [name, t["baseline_s"] or float("nan"), t["after_s"],
         t["speedup"] or float("nan")]
        for name, t in result["timings"].items()
    ]
    print_series(
        "Hot path: wall clock vs seed baseline",
        ["bench", "seed_s", "after_s", "speedup"],
        rows,
    )
    for label, p in result["perf"].items():
        print(
            f"{label}: {p['events']} events, "
            f"{p['events_per_sec']:.0f} events/s, "
            f"peak heap {p['peak_heap']}"
        )
    kf = result["kernel_floor"]
    print(
        f"kernel floor: scalar {kf['scalar_s']}s vs vectorized "
        f"{kf['vectorized_s']}s ({kf['speedup']}x, {kf['cells']} cells)"
    )
    with open(args.json, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"json: {os.path.abspath(args.json)}")


if __name__ == "__main__":
    main()

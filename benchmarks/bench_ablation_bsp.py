"""Ablation (Sec. II-D motivation): BSP sweeps vs the data-driven runtime.

The paper's premise: BSP is "seriously inefficient for data-driven
sweep computation where the parallelism is fine-grained".  Sweeping in
super-steps pays (i) a global barrier per wavefront step, (ii) whole-
step latency for any work that becomes ready mid-step, and (iii) the
max-process load each step.

Reproduction: the same sweep programs under the BSP executor and the
data-driven DES runtime across core counts.  Shape to reproduce: the
data-driven runtime wins, and its advantage grows with scale as the
per-step barrier and step-granularity losses accumulate.
"""

import pytest

from repro import DataDrivenRuntime, PatchSet, cube_structured
from repro.sweep import Material, MaterialMap, SnSolver, level_symmetric
from repro.sweep.baselines import BSPSweepRuntime

from _common import MACHINE, print_series

import numpy as np

CORES = [24, 48, 96, 192]


def run_bsp_ablation():
    mesh = cube_structured(20, length=20.0)
    mm = MaterialMap.uniform(Material.isotropic(1.0, 0.5), mesh.num_cells)
    rows = []
    for cores in CORES:
        nprocs = MACHINE.layout(cores, "hybrid").nprocs
        pset = PatchSet.from_structured(mesh, (4, 4, 4), nprocs=nprocs)
        solver = SnSolver(
            pset, level_symmetric(4), mm, np.ones((mesh.num_cells, 1)),
            grain=64,
        )
        progs, _ = solver.build_programs(compute=False)
        dd = DataDrivenRuntime(cores, machine=MACHINE).run(
            progs, pset.patch_proc
        )
        progs2, _ = solver.build_programs(compute=False)
        bsp = BSPSweepRuntime(cores, machine=MACHINE).run(
            progs2, pset.patch_proc
        )
        rows.append([cores, bsp.time * 1e3, dd.makespan * 1e3,
                     bsp.time / dd.makespan, bsp.supersteps])
    return rows


@pytest.mark.benchmark(group="ablation-bsp")
def test_bsp_vs_datadriven(benchmark):
    rows = benchmark.pedantic(run_bsp_ablation, rounds=1, iterations=1)
    print_series(
        "Ablation - BSP super-steps vs data-driven runtime (same sweep)",
        ["cores", "bsp_ms", "datadriven_ms", "bsp/dd", "supersteps"],
        rows,
    )
    # Data-driven wins at scale.
    assert rows[-1][3] > 1.0
    # The gap grows with core count.
    assert rows[-1][3] > rows[0][3]

"""Fig. 14: strong scalability of JSNT-U on ball (tetrahedra) meshes.

Paper: (a) small ball, 482,248 cells: speedup 11.5 (72%) at 384 cores
and 75.8 (30%) at 6,144 cores vs the 24-core base (256x range);
(b) large ball, 173,197,768 cells: speedup 9.9 (62%) at 49,152 cores
vs the 3,072-core base (16x range).

Scaled: (a) ball at resolution 14 (~10k tets), 24 -> 384 cores (16x);
(b) ball at resolution 20 (~30k tets), 48 -> 768 cores (16x).
Shape to reproduce: monotone speedup; small-ball efficiency at 16x in
the 25-75% band; the larger mesh holding efficiency better at equal
core multiples.
"""

import pytest

from _common import (
    ball_app, bench_args, check_hb, maybe_profile, print_series,
    snapshot_cadence_run, write_chrome_trace, write_snapshot_json,
)


def _strong(resolution: int, cores_list: list[int], patch_size: int,
            trace_dir=None, hb=None, snap_every=None, snap_stats=None):
    rows = []
    base = None
    ncells = None
    traced = trace_dir is not None or hb is not None
    for cores in cores_list:
        app = ball_app(resolution, cores, patch_size=patch_size)
        ncells = app.solver.mesh.num_cells
        label = f"fig14-ball{resolution}-c{cores}"
        if snap_every:
            rep = snapshot_cadence_run(
                lambda mgr: app.sweep_report(cores, persist=mgr),
                label, snap_every, snap_stats,
            )
        else:
            rep = app.sweep_report(cores, trace=traced)
        if traced:
            if trace_dir is not None:
                write_chrome_trace(rep, label, trace_dir)
            check_hb(rep, label, hb)
        if base is None:
            base = (cores, rep.makespan)
        sp = base[1] / rep.makespan
        eff = sp * base[0] / cores
        rows.append([cores, rep.makespan * 1e3, sp, eff, rep.idle_fraction()])
    return ncells, rows


def run_fig14a():
    return _strong(14, [24, 48, 96, 192, 384], patch_size=120)


def run_fig14b():
    return _strong(20, [48, 96, 192, 384, 768], patch_size=120)


@pytest.mark.benchmark(group="fig14")
def test_fig14a_small_ball(benchmark):
    ncells, rows = benchmark.pedantic(run_fig14a, rounds=1, iterations=1)
    print_series(
        f"Fig. 14a - strong scaling, small ball ({ncells} tets; "
        "paper: 482k cells, eff 72% at 16x)",
        ["cores", "time_ms", "speedup", "efficiency", "idle_frac"],
        rows,
    )
    times = [r[1] for r in rows]
    assert all(a > b for a, b in zip(times, times[1:]))
    assert 0.2 <= rows[-1][3] <= 0.9


@pytest.mark.benchmark(group="fig14")
def test_fig14b_large_ball(benchmark):
    ncells, rows = benchmark.pedantic(run_fig14b, rounds=1, iterations=1)
    print_series(
        f"Fig. 14b - strong scaling, large ball ({ncells} tets; "
        "paper: 173M cells, eff 62% at 16x)",
        ["cores", "time_ms", "speedup", "efficiency", "idle_frac"],
        rows,
    )
    times = [r[1] for r in rows]
    assert all(a > b for a, b in zip(times, times[1:]))
    assert 0.25 <= rows[-1][3] <= 0.9


_HDR = ["cores", "time_ms", "speedup", "efficiency", "idle_frac"]

if __name__ == "__main__":
    args = bench_args("Fig. 14: strong scaling of JSNT-U (ball meshes)")
    _tr, _hb = args.trace, args.check_hb
    _snap = args.snapshot_every
    if _snap and (_tr is not None or _hb is not None):
        raise SystemExit(
            "--snapshot-every is incompatible with --trace/--check-hb "
            "(trace buffers are not part of the snapshot schema)"
        )
    _stats: list = []
    if args.smoke:
        ncells, rows = maybe_profile(
            lambda: _strong(
                14, [24, 48], patch_size=120, trace_dir=_tr, hb=_hb,
                snap_every=_snap, snap_stats=_stats,
            ),
            "fig14a_smoke", args.profile,
        )
        print_series(f"Fig. 14a (smoke, {ncells} tets)", _HDR, rows)
    else:
        ncells, rows = maybe_profile(
            lambda: _strong(
                14, [24, 48, 96, 192, 384], patch_size=120,
                trace_dir=_tr, hb=_hb, snap_every=_snap, snap_stats=_stats,
            ),
            "fig14a", args.profile,
        )
        print_series(f"Fig. 14a - small ball ({ncells} tets)", _HDR, rows)
        ncells, rows = maybe_profile(
            lambda: _strong(
                20, [48, 96, 192, 384, 768], patch_size=120,
                trace_dir=_tr, hb=_hb, snap_every=_snap, snap_stats=_stats,
            ),
            "fig14b", args.profile,
        )
        print_series(f"Fig. 14b - large ball ({ncells} tets)", _HDR, rows)
    if _snap:
        write_snapshot_json("fig14", _snap, _stats)

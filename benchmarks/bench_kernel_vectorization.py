"""Wall-clock ablation: scalar vs level-vectorized sweep kernels.

Not a paper figure - this benchmarks the reproduction's own reference
numerics, following the HPC guides' vectorize-the-loops prescription:
the ``fast`` mode solves cells one by one in topological order, while
``fast-level`` batches each dependency level through NumPy group-bys.
Both paths are bitwise-tested elsewhere; here pytest-benchmark measures
real wall time and asserts the vectorized path wins.
"""

import numpy as np
import pytest

from repro.framework import PatchSet
from repro.mesh import cube_structured
from repro.sweep import Material, MaterialMap, SnSolver, level_symmetric


@pytest.fixture(scope="module")
def solver():
    mesh = cube_structured(16, 8.0)
    ps = PatchSet.single_patch(mesh)
    mm = MaterialMap.uniform(
        Material.isotropic(1.0, 0.5, groups=2), mesh.num_cells
    )
    s = SnSolver(ps, level_symmetric(4), mm, np.ones((mesh.num_cells, 2)))
    # Warm the caches so the benchmark measures the kernels, not setup.
    s.sweep_once(mode="fast")
    s.sweep_once(mode="fast-level")
    return s


@pytest.mark.benchmark(group="kernel-vectorization")
def test_scalar_kernel(benchmark, solver):
    phi, _, _ = benchmark.pedantic(
        lambda: solver.sweep_once(mode="fast"), rounds=2, iterations=1
    )
    assert phi.shape[0] == solver.mesh.num_cells


@pytest.mark.benchmark(group="kernel-vectorization")
def test_vectorized_kernel(benchmark, solver):
    phi, _, _ = benchmark.pedantic(
        lambda: solver.sweep_once(mode="fast-level"), rounds=2, iterations=1
    )
    assert phi.shape[0] == solver.mesh.num_cells


@pytest.mark.benchmark(group="kernel-vectorization")
def test_vectorized_is_faster(benchmark, solver):
    import time

    t0 = time.perf_counter()
    solver.sweep_once(mode="fast")
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    solver.sweep_once(mode="fast-level")
    t_vec = time.perf_counter() - t0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(f"\nscalar={t_scalar:.3f}s  vectorized={t_vec:.3f}s  "
          f"speedup={t_scalar / t_vec:.1f}x")
    assert t_vec < t_scalar

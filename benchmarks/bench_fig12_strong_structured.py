"""Fig. 12: strong scalability of JSNT-S on the Kobayashi benchmark.

Paper: (a) Kobayashi-400, 320 angles, 768 -> 24,576 cores (32x),
speedup 14.3 / efficiency 44.7%; (b) Kobayashi-800, 4,800 -> 76,800
cores (16x), speedup 7.4 / efficiency 46.3%.

Scaled: (a) Kobayashi-24, 24 angles, 24 -> 384 cores (16x);
(b) Kobayashi-32, 48 -> 768 cores (16x).  Shape to reproduce:
monotone speedup with efficiency decaying into the 30-70% band at 16x.
"""

import pytest

from _common import (
    KOBA_LARGE, KOBA_MIDDLE, bench_args, check_hb, koba_app, maybe_profile,
    print_series, snapshot_cadence_run, write_chrome_trace,
    write_snapshot_json,
)


def _strong_scaling(
    n: int, cores_list: list[int], patch: int,
    trace_dir=None, hb=None, snap_every=None, snap_stats=None,
) -> list[list]:
    rows = []
    base = None
    traced = trace_dir is not None or hb is not None
    for cores in cores_list:
        app = koba_app(n, cores, patch=patch)
        label = f"fig12-koba{n}-c{cores}"
        if snap_every:
            rep = snapshot_cadence_run(
                lambda mgr: app.sweep_report(cores, coarsened=False,
                                             persist=mgr),
                label, snap_every, snap_stats,
            )
        else:
            rep = app.sweep_report(cores, coarsened=False, trace=traced)
        if traced:
            if trace_dir is not None:
                write_chrome_trace(rep, label, trace_dir)
            check_hb(rep, label, hb)
        if base is None:
            base = (cores, rep.makespan)
        speedup = base[1] / rep.makespan * 1.0
        eff = speedup * base[0] / cores
        rows.append([cores, rep.makespan * 1e3, speedup, eff,
                     rep.idle_fraction()])
    return rows


def run_fig12a() -> list[list]:
    return _strong_scaling(KOBA_MIDDLE, [24, 48, 96, 192, 384], patch=6)


def run_fig12a_smoke() -> list[list]:
    """CI-sized fig12a: the two smallest core counts only."""
    return _strong_scaling(KOBA_MIDDLE, [24, 48], patch=6)


def run_fig12b() -> list[list]:
    return _strong_scaling(KOBA_LARGE, [48, 96, 192, 384, 768], patch=8)


@pytest.mark.benchmark(group="fig12")
def test_fig12a_kobayashi_middle_scale(benchmark):
    rows = benchmark.pedantic(run_fig12a, rounds=1, iterations=1)
    print_series(
        f"Fig. 12a - strong scaling, Kobayashi-{KOBA_MIDDLE} "
        "(paper: Kobayashi-400, eff 44.7% at 32x)",
        ["cores", "time_ms", "speedup", "efficiency", "idle_frac"],
        rows,
    )
    times = [r[1] for r in rows]
    assert all(a > b for a, b in zip(times, times[1:])), "speedup monotone"
    eff_at_16x = rows[-1][3]
    assert 0.25 <= eff_at_16x <= 0.85, (
        f"efficiency at 16x cores should land in the paper's band, "
        f"got {eff_at_16x:.2f}"
    )


@pytest.mark.benchmark(group="fig12")
def test_fig12b_kobayashi_large_scale(benchmark):
    rows = benchmark.pedantic(run_fig12b, rounds=1, iterations=1)
    print_series(
        f"Fig. 12b - strong scaling, Kobayashi-{KOBA_LARGE} "
        "(paper: Kobayashi-800, eff 46.3% at 16x)",
        ["cores", "time_ms", "speedup", "efficiency", "idle_frac"],
        rows,
    )
    times = [r[1] for r in rows]
    assert all(a > b for a, b in zip(times, times[1:]))
    assert 0.2 <= rows[-1][3] <= 0.85


_HDR = ["cores", "time_ms", "speedup", "efficiency", "idle_frac"]

if __name__ == "__main__":
    args = bench_args("Fig. 12: strong scaling of JSNT-S (Kobayashi)")
    _tr, _hb = args.trace, args.check_hb
    _snap = args.snapshot_every
    if _snap and (_tr is not None or _hb is not None):
        raise SystemExit(
            "--snapshot-every is incompatible with --trace/--check-hb "
            "(trace buffers are not part of the snapshot schema)"
        )
    _stats: list = []
    if args.smoke:
        rows = maybe_profile(
            lambda: _strong_scaling(
                KOBA_MIDDLE, [24, 48], patch=6, trace_dir=_tr, hb=_hb,
                snap_every=_snap, snap_stats=_stats,
            ),
            "fig12a_smoke", args.profile,
        )
        print_series("Fig. 12a (smoke)", _HDR, rows)
    else:
        rows = maybe_profile(
            lambda: _strong_scaling(
                KOBA_MIDDLE, [24, 48, 96, 192, 384], patch=6,
                trace_dir=_tr, hb=_hb, snap_every=_snap, snap_stats=_stats,
            ),
            "fig12a", args.profile,
        )
        print_series(f"Fig. 12a - Kobayashi-{KOBA_MIDDLE}", _HDR, rows)
        rows = maybe_profile(
            lambda: _strong_scaling(
                KOBA_LARGE, [48, 96, 192, 384, 768], patch=8,
                trace_dir=_tr, hb=_hb, snap_every=_snap, snap_stats=_stats,
            ),
            "fig12b", args.profile,
        )
        print_series(f"Fig. 12b - Kobayashi-{KOBA_LARGE}", _HDR, rows)
    if _snap:
        write_snapshot_json("fig12", _snap, _stats)

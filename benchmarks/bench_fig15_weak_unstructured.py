"""Fig. 15: weak scalability of JSNT-U on reactor and ball meshes.

Paper: mesh refined proportionally with cores; parallel efficiency at
12,288 cores is ~40% for the reactor and below 20% for the ball - the
thick-subdomain refinement lengthens the sweep critical path.

Scaled: cores 24 -> 192 (8x); reactor resolution grows as sqrt(cores)
(2-D mesh), ball resolution as cores^(1/3) (3-D), keeping cells/core
approximately constant.  Shape to reproduce: efficiency decays well
below 1; the 2-D reactor retains more efficiency than the 3-D ball at
the largest scale (shorter critical-path growth).
"""

import pytest

from _common import ball_app, bench_args, maybe_profile, print_series, reactor_app

CORES = [24, 48, 96, 192]
REACTOR_RES = {24: 20, 48: 28, 96: 40, 192: 56}  # ~ sqrt(cores)
BALL_RES = {24: 10, 48: 13, 96: 16, 192: 20}  # ~ cores^(1/3)


def _weak(app_fn, res_map, patch_size):
    rows = []
    base = None
    for cores in CORES:
        app = app_fn(res_map[cores], cores, patch_size=patch_size)
        ncells = app.solver.mesh.num_cells
        rep = app.sweep_report(cores)
        if base is None:
            base = rep.makespan
        # Weak-scaling efficiency vs the per-core work actually placed
        # (mesh generators cannot hit cell counts exactly).
        work_ratio = (ncells / cores) / (
            rows[0][1] / CORES[0] if rows else ncells / cores
        )
        eff = base / rep.makespan * work_ratio
        rows.append([cores, ncells, ncells / cores, rep.makespan * 1e3, eff])
    return rows


def run_fig15():
    return (
        _weak(reactor_app, REACTOR_RES, patch_size=120),
        _weak(ball_app, BALL_RES, patch_size=120),
    )


@pytest.mark.benchmark(group="fig15")
def test_fig15_weak_scaling(benchmark):
    reactor_rows, ball_rows = benchmark.pedantic(
        run_fig15, rounds=1, iterations=1
    )
    header = ["cores", "cells", "cells/core", "time_ms", "weak_eff"]
    print_series("Fig. 15 - weak scaling, reactor (paper: ~40% at 512x)",
                 header, reactor_rows)
    print_series("Fig. 15 - weak scaling, ball (paper: <20% at 512x)",
                 header, ball_rows)
    # Efficiency decays well below 1 for both mesh families - the
    # headline of Fig. 15.  (The paper's reactor-vs-ball *ordering*
    # emerges only at its 512x scaling range; at our 8x range both
    # families sit in the same band - recorded in EXPERIMENTS.md.)
    for rows in (reactor_rows, ball_rows):
        assert rows[-1][4] < 0.85
        assert rows[-1][4] < rows[1][4] * 1.05
if __name__ == "__main__":
    args = bench_args("Fig. 15: weak scaling (unstructured)")
    reactor_rows, ball_rows = maybe_profile(run_fig15, "fig15", args.profile)
    header = ["cores", "cells", "cells/core", "time_ms", "weak_eff"]
    print_series("Fig. 15 - weak scaling, reactor", header, reactor_rows)
    print_series("Fig. 15 - weak scaling, ball", header, ball_rows)

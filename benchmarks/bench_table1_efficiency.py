"""Table I: parallel efficiency comparison with the literature.

Paper's table:

    Denovo (KBA)   Kobayashi-400          77.8%   3,600 vs 144 cores
    JSweep         Kobayashi-400          89.6%   6,144 vs 384 cores
    PSD-b          sphere 151k cells S4   88%     1,024 vs 128 cores
    JSweep         sphere 482k cells S4   66%     1,536 vs 192 cores

Reproduction: the same four rows at scaled core counts on one machine
model.  Denovo is the KBA wavefront schedule; PSD-b is a manually
parallelized cell-level data-driven sweep, modeled as the MPI-only
runtime with fine patches.  Shape to reproduce: every efficiency in a
sane band, KBA competitive on the structured problem (the paper's
point is that JSweep matches KBA-class efficiency while staying
general), and the hand-tuned PSD-b slightly ahead of framework JSweep
on the sphere - exactly the ordering the paper reports.
"""

import pytest

from repro.sweep.baselines import KBASchedule

from _common import MACHINE, ball_app, koba_app, print_series


def run_table1():
    rows = []

    # --- Denovo / KBA on the structured Kobayashi problem -----------
    # Scaled: 25x grid over 300 vs 12 cores (paper 3,600 vs 144).
    base = KBASchedule((24, 24, 24), 3, 4, k_blocks=6,
                       machine=MACHINE).simulate(24)
    big = KBASchedule((24, 24, 24), 15, 20, k_blocks=6,
                      machine=MACHINE).simulate(24)
    kba_eff = (base.time / big.time) * (12 / 300)
    rows.append(["Denovo (KBA)", "Kobayashi", "77.8%", 300, 12,
                 f"{kba_eff * 100:.1f}%"])

    # --- JSweep on the structured Kobayashi problem (16x) -----------
    a = koba_app(24, 24, patch=6)
    r0 = a.sweep_report(24)
    a = koba_app(24, 384, patch=6)
    r1 = a.sweep_report(384)
    js_eff = (r0.makespan / r1.makespan) * (24 / 384)
    rows.append(["JSweep", "Kobayashi", "89.6%", 384, 24,
                 f"{js_eff * 100:.1f}%"])

    # --- PSD-b analogue: hand-parallelized MPI-only sphere sweep ----
    # (8x cores, as the paper's 1,024 vs 128.)
    b0 = ball_app(14, 24, patch_size=50, mode="mpi_only")
    p0 = b0.sweep_report(24, mode="mpi_only")
    b1 = ball_app(14, 192, patch_size=50, mode="mpi_only")
    p1 = b1.sweep_report(192, mode="mpi_only")
    psd_eff = (p0.makespan / p1.makespan) * (24 / 192)
    rows.append(["PSD-b", "sphere S4", "88%", 192, 24,
                 f"{psd_eff * 100:.1f}%"])

    # --- JSweep on the sphere (8x) -----------------------------------
    s0 = ball_app(14, 24, patch_size=120)
    q0 = s0.sweep_report(24)
    s1 = ball_app(14, 192, patch_size=120)
    q1 = s1.sweep_report(192)
    jsb_eff = (q0.makespan / q1.makespan) * (24 / 192)
    rows.append(["JSweep", "sphere S4", "66%", 192, 24,
                 f"{jsb_eff * 100:.1f}%"])

    return rows, {"kba": kba_eff, "jsweep_koba": js_eff,
                  "psdb": psd_eff, "jsweep_ball": jsb_eff}


@pytest.mark.benchmark(group="table1")
def test_table1_parallel_efficiency(benchmark):
    rows, effs = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print_series(
        "Table I - parallel efficiency vs literature (scaled cores)",
        ["system", "problem", "paper_eff", "max_cores", "base", "measured"],
        rows,
    )
    for name, e in effs.items():
        assert 0.2 < e <= 1.05, f"{name} efficiency out of band: {e:.2f}"
    # The paper's orderings: JSweep is KBA-class on the structured
    # problem, and the hand-tuned PSD-b leads JSweep on the sphere.
    assert effs["jsweep_koba"] > 0.5 * effs["kba"]
    assert effs["psdb"] > 0.8 * effs["jsweep_ball"] * 0.8

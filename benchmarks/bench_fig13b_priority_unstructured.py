"""Fig. 13b: priority strategies on unstructured meshes vs core count.

Paper: JSNT-U, reactor mesh, strategies BFS / BFS+SLBD / SLBD /
SLBD+BFS over 384..6,144 cores; unlike on structured meshes the effect
"is not so significant".

Scaled: reactor at resolution 26, 24..192 simulated cores.  Shape to
reproduce: all strategies scale, and the spread between them stays
small (well under the 2-3x separations of the structured Fig. 9b).
"""

import pytest

from repro.runtime import CostModel

from _common import bench_args, maybe_profile, print_series, reactor_app

STRATEGIES = ["bfs", "bfs+slbd", "slbd", "slbd+bfs"]
CORES = [24, 48, 96, 192]
GROUPS = 4


def run_fig13b() -> dict[str, list[float]]:
    out: dict[str, list[float]] = {s: [] for s in STRATEGIES}
    for cores in CORES:
        for strat in STRATEGIES:
            app = reactor_app(
                26, cores, patch_size=120, groups=GROUPS, strategy=strat
            )
            rep = app.sweep_report(cores, cost=CostModel(groups=GROUPS))
            out[strat].append(rep.makespan * 1e3)
    return out


@pytest.mark.benchmark(group="fig13b")
def test_fig13b_priority_strategies_unstructured(benchmark):
    out = benchmark.pedantic(run_fig13b, rounds=1, iterations=1)
    rows = [
        [c] + [out[s][i] for s in STRATEGIES] for i, c in enumerate(CORES)
    ]
    print_series(
        "Fig. 13b - priority strategies (unstructured reactor, ms)",
        ["cores"] + [s.upper() for s in STRATEGIES],
        rows,
    )
    for s in STRATEGIES:
        assert out[s][-1] < out[s][0], f"{s} must scale"
    # The paper's observation: strategy effect is modest on
    # unstructured meshes.
    for i in range(len(CORES)):
        vals = [out[s][i] for s in STRATEGIES]
        assert max(vals) / min(vals) < 1.5, (
            f"spread too large at {CORES[i]} cores: {vals}"
        )
if __name__ == "__main__":
    args = bench_args("Fig. 13b: priority strategies (unstructured)")
    out = maybe_profile(run_fig13b, "fig13b", args.profile)
    rows = [[c] + [out[s][i] for s in STRATEGIES]
            for i, c in enumerate(CORES)]
    print_series("Fig. 13b - priority strategies (unstructured)",
                 ["cores"] + list(STRATEGIES), rows)

"""Elastic membership: does letting crashed ranks rejoin buy time?

Head-to-head on identical restart-heavy fault plans, both sides armed
with the full membership stack (heartbeat detection, incarnation
fencing - no ``detection_delay`` oracle anywhere):

* **rejoin** - the plan as written: every crash carries a
  ``restart_after``, so the rank comes back, announces a bumped
  incarnation, catches up via snapshot + delivery-log anti-entropy and
  pulls patches back under the rebalance budget;
* **never-rejoin** - the same plan with every ``restart_after``
  stripped: crashes are permanent, the survivors absorb the dead
  ranks' patches through failover and keep them for the rest of the
  run.

The headline metrics: restarted ranks commit real work *after* their
rejoin (counted from ``hb_restart``/``hb_commit`` trace records, so a
rejoin that only decorates the counters scores zero), and the rejoin
side's makespan beats never-rejoin failover on every restart-heavy
cell - returning capacity must outrun the state-transfer tax.

Every run is held to the chaos oracle: flux bitwise-identical to the
fault-free reference.  Elasticity that changes a bit is a bug.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_membership.py

Writes ``BENCH_membership.json`` at the repo root (override with
``--json``); ``--trace`` dumps per-run Chrome traces, ``--check-hb``
replays every traced run through the vector-clock checker.
"""

import json
import os

import numpy as np

from repro.chaos import build_scenario
from repro.runtime import (
    CrashFault,
    DataDrivenRuntime,
    FaultPlan,
    MembershipConfig,
    RecoveryConfig,
)

from _common import bench_args, check_hb, print_series, write_chrome_trace

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_membership.json")

#: Virtual-time window the fault plans land in (the chaos horizon).
HZ = 1e-3

MCFG = MembershipConfig.all_on()


def restart_heavy_plan(nprocs: int, seed: int = 31) -> FaultPlan:
    """Two early crashes that both come back with most of the run left:
    the window where returning capacity should pay for itself.  The
    down windows outlast the suspicion timeout, so each victim is
    detected and failed over *before* it returns - the rejoin has to
    pull its patches back through the rebalance budget, the full
    elastic round trip."""
    victims = (1, nprocs - 1) if nprocs > 2 else (1,)
    crashes = tuple(
        CrashFault(p, (0.12 + 0.06 * i) * HZ,
                   restart_after=(0.42 + 0.05 * i) * HZ)
        for i, p in enumerate(victims)
    )
    return FaultPlan(crashes=crashes, seed=seed)


def strip_restarts(plan: FaultPlan) -> FaultPlan:
    """The never-rejoin control: same crashes, made permanent."""
    crashes = tuple(
        CrashFault(c.proc, c.time, cascade=c.cascade,
                   cascade_window=c.cascade_window,
                   cascade_max=c.cascade_max)
        for c in plan.crashes
    )
    return FaultPlan(crashes=crashes, stragglers=plan.stragglers,
                     partitions=plan.partitions, p_drop=plan.p_drop,
                     p_corrupt=plan.p_corrupt, seed=plan.seed)


def _post_rejoin_commits(rep) -> int:
    """Count ``hb_commit`` records on a restarted rank after its
    ``hb_restart`` - commits the cluster only got back by rejoining."""
    restarted: dict[int, float] = {}
    for e in rep.hb_events:
        if e.kind == "hb_restart":
            p = e.detail[0]
            restarted[p] = min(e.time, restarted.get(p, e.time))
    return sum(
        1 for e in rep.hb_events
        if e.kind == "hb_commit"
        and e.detail[1] in restarted
        and e.time > restarted[e.detail[1]]
    )


SCENARIOS = (("structured", "hybrid"), ("unstructured", "mpi_only"))
CONFIGS = ("rejoin", "never-rejoin")


def run_matrix(trace_dir: str | None = None, hb=None) -> list[dict]:
    """The scenario x {rejoin, never-rejoin} grid; one row per run."""
    rows: list[dict] = []
    for kind, mode in SCENARIOS:
        machine, cores, pset, solver = build_scenario(kind, mode)
        nprocs = machine.layout(cores, mode).nprocs
        reference, _, _ = solver.sweep_once(mode="fast")
        base = restart_heavy_plan(nprocs)
        for cfg_name in CONFIGS:
            plan = base if cfg_name == "rejoin" else strip_restarts(base)
            progs, faces = solver.build_programs(resilient=True)
            rt = DataDrivenRuntime(
                cores, machine=machine, mode=mode, faults=plan,
                recovery=RecoveryConfig(membership=MCFG),
                trace=True,
            )
            rep = rt.run(progs, pset.patch_proc)
            phi, _ = solver.accumulate(faces)
            exact = bool(
                phi.tobytes() == np.ascontiguousarray(reference).tobytes()
            )
            row = {
                "scenario": f"{kind}-{mode}",
                "config": cfg_name,
                "makespan": rep.makespan,
                "exact": exact,
                "post_rejoin_commits": _post_rejoin_commits(rep),
                "membership": rep.membership_summary(),
            }
            rows.append(row)
            label = f"membership_{kind}_{mode}_{cfg_name}"
            if trace_dir is not None:
                write_chrome_trace(rep, label, trace_dir)
            check_hb(rep, label, hb)
    return rows


def report(rows: list[dict]) -> None:
    table = []
    for r in rows:
        m = r["membership"]
        table.append([
            r["scenario"], r["config"],
            f"{r['makespan'] * 1e3:.3f}ms",
            "yes" if r["exact"] else "NO",
            m["suspicions"], m["restarts"], m["rejoins"],
            m["rebalanced_patches"], r["post_rejoin_commits"],
        ])
    print_series(
        "Elastic membership - rejoin vs never-rejoin failover on "
        "restart-heavy plans (heartbeat detection, bitwise-exact oracle)",
        ["scenario", "config", "makespan", "exact", "suspect", "restarts",
         "rejoins", "rebalanced", "post-rejoin-commits"],
        table,
    )


def _row(rows: list[dict], scenario: str, config: str) -> dict:
    return next(
        r for r in rows
        if (r["scenario"], r["config"]) == (scenario, config)
    )


def check(rows: list[dict]) -> None:
    # Zero correctness deviations, ever: elasticity must be invisible
    # to the flux.
    bad = [r for r in rows if not r["exact"]]
    assert not bad, f"{len(bad)} runs deviated from the reference flux"
    for kind, mode in SCENARIOS:
        sc = f"{kind}-{mode}"
        rj = _row(rows, sc, "rejoin")
        nr = _row(rows, sc, "never-rejoin")
        # The full elastic round trip ran: heartbeat detection beat the
        # restart, so the rejoin had to pull patches back.
        assert rj["membership"]["suspicions"] > 0, f"{sc}: oracle-free "\
            "detection never fired"
        assert rj["membership"]["rebalanced_patches"] > 0, (
            f"{sc}: rejoin pulled no patches back"
        )
        # The restarted ranks actually rejoined and did real work.
        assert rj["membership"]["restarts"] > 0, f"{sc}: no restart fired"
        assert rj["membership"]["rejoins"] > 0, f"{sc}: no rank rejoined"
        assert rj["post_rejoin_commits"] > 0, (
            f"{sc}: restarted ranks committed nothing after rejoining"
        )
        # The control really never rejoined.
        assert nr["membership"]["rejoins"] == 0
        assert nr["post_rejoin_commits"] == 0
        # The headline: returning capacity beats permanent failover.
        assert rj["makespan"] < nr["makespan"], (
            f"{sc}: rejoin {rj['makespan']:.6f}s is not below "
            f"never-rejoin {nr['makespan']:.6f}s"
        )


try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="membership")
    def test_membership_elasticity(benchmark):
        rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
        report(rows)
        check(rows)


if __name__ == "__main__":
    args = bench_args(
        "Elastic membership: rejoining restarted ranks vs never-rejoin "
        "failover on identical restart-heavy fault plans, asserting "
        "bitwise-exact flux, post-rejoin commits on the restarted ranks, "
        "and a makespan win for elasticity",
        extra=lambda ap: (
            ap.add_argument("--json", metavar="PATH", default=JSON_PATH,
                            help="where to write the JSON summary"),
        ),
    )
    rows = run_matrix(trace_dir=args.trace, hb=args.check_hb)
    report(rows)
    check(rows)
    out = os.path.normpath(args.json)
    with open(out, "w") as fh:
        json.dump({"rows": rows}, fh, indent=1)
    print(f"\nsummary: {out}")
    rj = [r["makespan"] for r in rows if r["config"] == "rejoin"]
    nr = [r["makespan"] for r in rows if r["config"] == "never-rejoin"]
    gain = 100.0 * (1.0 - sum(rj) / sum(nr))
    print(f"membership elasticity: OK (makespan -{gain:.1f}% vs "
          f"never-rejoin, all runs bitwise-exact)")

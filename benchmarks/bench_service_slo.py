"""Service SLOs: throughput, tail latency and shed rate under load.

Three traffic regimes over identical seeded tenants on the sweep
service (all virtual time, one seed end to end):

* **baseline** - arrivals below capacity: nothing is shed, every job
  runs at full fidelity; this calibrates the clean p50/p99;
* **overload** - the same tenants arrive in bursts at several times
  capacity with degradation disabled: admission control sheds the
  overflow (bounded queues - that is the SLO being bought), and the
  jobs that are admitted queue behind full-fidelity runs;
* **overload+degrade** - same arrivals, graceful degradation armed:
  past the overload watermark new jobs run the demoted configuration
  (coarser clustering grain, larger patches), finishing faster and
  returning their admission credits sooner.

The check asserts the degradation trade the design promises: under
identical overload, demotion must cut the completed-jobs p99 latency
and not shed more than the rigid service - degraded answers instead
of dropped jobs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service_slo.py

Writes ``BENCH_service_slo.json`` at the repo root (override with
``--json``).  ``--smoke`` runs the CI-sized traffic; ``--trace`` dumps
one Chrome trace per executed job attempt and ``--check-hb`` replays
each attempt through the vector-clock happens-before checker.
"""

import json
import os

import numpy as np

from repro.service import (
    JobExecutor, JobSpec, JobStatus, ServiceConfig, SweepService,
    WriteAheadLog,
)

from _common import bench_args, check_hb, print_series, write_chrome_trace

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_service_slo.json")

TENANTS = 4
FULL_JOBS = 48
SMOKE_JOBS = 16

#: One full-fidelity structured job's virtual makespan is ~0.9ms on
#: the 2-worker service -> capacity ~2.2 jobs/ms.  Baseline arrives at
#: ~1.1 jobs/ms; overload fires the same jobs in ~4x-capacity bursts.
BASELINE_SPACING = 0.9e-3
BURST_GAP = 2e-3
BURST_WIDTH = 0.5e-3


def _bursts(jobs: int) -> int:
    """~12 jobs per burst keeps the burst rate at ~4x capacity at any
    traffic size (smoke included)."""
    return max(2, round(jobs / 12))


def _config(degrade: bool) -> ServiceConfig:
    return ServiceConfig(
        workers=2,
        tenant_slots=4,
        global_slots=10,
        degrade_at=0.5 if degrade else 1.0,
        seed=1,
    )


def _arrivals(seed: int, jobs: int, overload: bool):
    """Seeded traffic: (time, spec) per job, identical specs across
    regimes - only the arrival process changes."""
    rng = np.random.default_rng((seed, 4242))
    out = []
    for j in range(jobs):
        tenant = f"tenant-{int(rng.integers(0, TENANTS))}"
        spec = JobSpec(tenant=tenant, seed=int(rng.integers(0, 2**20)))
        if overload:
            burst = int(rng.integers(0, _bursts(jobs)))
            at = burst * BURST_GAP + float(rng.uniform(0.0, BURST_WIDTH))
        else:
            at = j * BASELINE_SPACING + float(
                rng.uniform(0.0, 0.25 * BASELINE_SPACING)
            )
        out.append((at, spec))
    out.sort(key=lambda x: x[0])
    return out


def _percentile(xs: list[float], q: float) -> float:
    return float(np.percentile(np.array(xs), q)) if xs else 0.0


def run_regime(name: str, seed: int, jobs: int,
               executor: JobExecutor, wal_dir: str | None = None) -> dict:
    overload = name != "baseline"
    wal = None
    if wal_dir is not None:
        # Durability instrumentation: journal every service transition
        # (submission, attempt, commit, terminal, reject) to a
        # write-ahead log and report its record/byte cost per regime.
        wal = WriteAheadLog(
            os.path.join(wal_dir, f"{name.replace('+', '_')}.wal"),
            fsync=False,
        )
    svc = SweepService(_config(degrade=name == "overload+degrade"),
                       executor=executor, wal=wal)
    for at, spec in _arrivals(seed, jobs, overload):
        svc.submit(spec, at=at)
    results = svc.run_until_idle()
    done = [r for r in results if r.status == JobStatus.COMPLETED]
    lat = [r.latency for r in done]
    m = svc.metrics()
    wal_cost = {}
    if wal is not None:
        wal_cost = {
            "wal_records": wal.records,
            "wal_bytes": wal.bytes_written,
        }
        wal.close()
    return {
        **wal_cost,
        "regime": name,
        "jobs": jobs,
        "completed": len(done),
        "failed": sum(m["failed"].values()),
        "shed": sum(m["shed"].values()),
        "shed_rate": m["shed_rate"],
        "demotions": m["demotions"],
        "exact": all(r.exact for r in done),
        "span": svc.now,
        "jobs_per_sec": len(done) / svc.now if svc.now > 0 else 0.0,
        "p50_latency": _percentile(lat, 50),
        "p99_latency": _percentile(lat, 99),
    }


def run_matrix(jobs: int = FULL_JOBS, seed: int = 0,
               wal_dir: str | None = None,
               trace_dir: str | None = None, hb=None) -> list[dict]:
    # Scenario cache shared across regimes.  --trace / --check-hb arm
    # event tracing on every attempt's runtime: each clean attempt's
    # report is exported as a Chrome trace and/or replayed through the
    # vector-clock checker (a race aborts the benchmark).
    executor = JobExecutor(trace=trace_dir is not None or hb is not None)
    if executor.trace:
        seq = iter(range(1_000_000))

        def _export(spec, rep):
            label = f"service_{spec.kind}_{spec.mode}_job{next(seq)}"
            if trace_dir is not None:
                write_chrome_trace(rep, label, trace_dir)
            check_hb(rep, label, hb)

        executor.on_report = _export
    return [
        run_regime(name, seed, jobs, executor, wal_dir=wal_dir)
        for name in ("baseline", "overload", "overload+degrade")
    ]


def report(rows: list[dict]) -> None:
    table = [
        [
            r["regime"], r["jobs"], r["completed"], r["shed"],
            f"{100.0 * r['shed_rate']:.0f}%", r["demotions"],
            f"{r['jobs_per_sec'] / 1e3:.2f}k/s",
            f"{r['p50_latency'] * 1e3:.2f}ms",
            f"{r['p99_latency'] * 1e3:.2f}ms",
        ]
        for r in rows
    ]
    print_series(
        "Service SLOs - baseline vs overload vs overload+degradation "
        "(virtual time, identical seeded tenants)",
        ["regime", "jobs", "done", "shed", "shed%", "demoted",
         "throughput", "p50", "p99"],
        table,
    )


def check(rows: list[dict]) -> None:
    by = {r["regime"]: r for r in rows}
    base, over, deg = (
        by["baseline"], by["overload"], by["overload+degrade"]
    )
    # Nothing computed wrong anywhere, and every accepted job resolved.
    for r in rows:
        assert r["exact"], f"{r['regime']}: inexact completed flux"
        assert r["failed"] == 0, f"{r['regime']}: unexpected failures"
        assert r["completed"] + r["shed"] == r["jobs"], (
            f"{r['regime']}: job ledger does not add up"
        )
    # Under capacity nothing is shed; overload sheds and stretches p99.
    assert base["shed"] == 0, "baseline traffic was shed"
    assert over["shed"] > 0, "overload regime never shed"
    assert over["p99_latency"] > base["p99_latency"], (
        "overload did not stretch tail latency"
    )
    # The degradation trade: demotion fired, cut the overloaded p99,
    # and answered at least as many jobs as the rigid service.
    assert deg["demotions"] > 0, "degradation never engaged"
    assert deg["p99_latency"] < over["p99_latency"], (
        f"degradation did not cut p99: {deg['p99_latency']:.6f}s vs "
        f"{over['p99_latency']:.6f}s"
    )
    assert deg["completed"] >= over["completed"], (
        "degradation answered fewer jobs than the rigid service"
    )


try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="service")
    def test_service_slo(benchmark):
        rows = benchmark.pedantic(
            run_matrix, kwargs={"jobs": SMOKE_JOBS}, rounds=1, iterations=1
        )
        report(rows)
        check(rows)


if __name__ == "__main__":
    args = bench_args(
        "Service SLOs: throughput, p50/p99 latency and shed rate for "
        "baseline vs overload vs overload-with-degradation traffic on "
        "the multi-tenant sweep service",
        extra=lambda ap: (
            ap.add_argument("--json", metavar="PATH", default=JSON_PATH,
                            help="where to write the JSON summary"),
        ),
    )
    jobs = SMOKE_JOBS if args.smoke else FULL_JOBS
    if args.snapshot_every:
        # The service's durability unit is the WAL record, not an event
        # cadence: the flag arms journaling and the JSON rows carry
        # wal_records / wal_bytes per regime.
        import tempfile

        with tempfile.TemporaryDirectory() as wal_dir:
            rows = run_matrix(jobs=jobs, wal_dir=wal_dir,
                              trace_dir=args.trace, hb=args.check_hb)
    else:
        rows = run_matrix(jobs=jobs, trace_dir=args.trace,
                          hb=args.check_hb)
    report(rows)
    check(rows)
    out = os.path.normpath(args.json)
    with open(out, "w") as fh:
        json.dump({"rows": rows}, fh, indent=1)
    print(f"\nsummary: {out}")
    over = next(r for r in rows if r["regime"] == "overload")
    deg = next(r for r in rows if r["regime"] == "overload+degrade")
    cut = 100.0 * (1.0 - deg["p99_latency"] / over["p99_latency"])
    print(f"service SLO: OK (degradation cut overloaded p99 by "
          f"{cut:.0f}%, shed {100 * deg['shed_rate']:.0f}% vs "
          f"{100 * over['shed_rate']:.0f}%)")
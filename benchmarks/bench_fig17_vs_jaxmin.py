"""Fig. 17: JSweep vs the manually-optimized JAxMIN implementations.

Paper: (a) JSweep vs JASMIN's SnSweep (a hand-optimized data-driven
Sweep3D) on Kobayashi-400 - JSweep constantly faster; (b) JSweep vs
JAUMIN's JSNT-U on the ball mesh - constant reduction with the gap
slightly growing with core count.

Reproduction: the JAxMIN baselines run the *same* data-driven sweep
but on the MPI-only runtime (every core a rank: no dedicated master to
overlap communication, no intra-process worker pool to absorb load
imbalance) - exactly the architectural difference the paper credits
for JSweep's advantage (Sec. IV-A).  Shapes to reproduce: hybrid
(JSweep) faster at every core count in both panels, with a growing
relative gap in (b).
"""

import pytest

from _common import ball_app, bench_args, koba_app, maybe_profile, print_series

KOBA_CORES = [24, 48, 96, 192]
BALL_CORES = [24, 48, 96, 192]


def run_fig17a():
    rows = []
    for cores in KOBA_CORES:
        # patch 4^3 on a 24^3 mesh: 216 patches, enough for 192 ranks.
        hybrid = koba_app(24, cores, patch=4).sweep_report(cores)
        mpi = koba_app(24, cores, patch=4, mode="mpi_only").sweep_report(
            cores, mode="mpi_only"
        )
        rows.append([cores, mpi.makespan * 1e3, hybrid.makespan * 1e3,
                     mpi.makespan / hybrid.makespan])
    return rows


def run_fig17b():
    rows = []
    for cores in BALL_CORES:
        hybrid = ball_app(14, cores, patch_size=50).sweep_report(cores)
        mpi = ball_app(14, cores, patch_size=50, mode="mpi_only").sweep_report(
            cores, mode="mpi_only"
        )
        rows.append([cores, mpi.makespan * 1e3, hybrid.makespan * 1e3,
                     mpi.makespan / hybrid.makespan])
    return rows


@pytest.mark.benchmark(group="fig17")
def test_fig17a_vs_jasmin_structured(benchmark):
    rows = benchmark.pedantic(run_fig17a, rounds=1, iterations=1)
    print_series(
        "Fig. 17a - JSweep (hybrid) vs JASMIN-style (MPI-only), Kobayashi",
        ["cores", "jasmin_ms", "jsweep_ms", "gap"],
        rows,
    )
    for r in rows:
        assert r[3] > 1.0, f"JSweep must win at {r[0]} cores"


@pytest.mark.benchmark(group="fig17")
def test_fig17b_vs_jaumin_unstructured(benchmark):
    rows = benchmark.pedantic(run_fig17b, rounds=1, iterations=1)
    print_series(
        "Fig. 17b - JSweep (hybrid) vs JAUMIN-style (MPI-only), ball",
        ["cores", "jaumin_ms", "jsweep_ms", "gap"],
        rows,
    )
    for r in rows:
        assert r[3] > 1.0
    # The comparative advantage grows (slightly) with core count.
    assert rows[-1][3] > rows[0][3]
if __name__ == "__main__":
    args = bench_args("Fig. 17: JSweep (hybrid) vs MPI-only baseline")
    rows = maybe_profile(run_fig17a, "fig17a", args.profile)
    print_series("Fig. 17a - Kobayashi",
                 ["cores", "jasmin_ms", "jsweep_ms", "gap"], rows)
    rows = maybe_profile(run_fig17b, "fig17b", args.profile)
    print_series("Fig. 17b - ball",
                 ["cores", "jaumin_ms", "jsweep_ms", "gap"], rows)

"""Fig. 13a: patch size and clustering grain on unstructured meshes.

Paper setup: JSNT-U on the reactor mesh, S4, 4 groups.  Left panel:
runtime vs patch size (drops quickly, then rises slightly - larger
patches cut communication but delay downwind patches).  Right panel:
runtime vs clustering grain (drops, then stays flat - available
parallelism limits the real grain to ~16-64 ready vertices).

Scaled setup: reactor mesh at resolution 26, 24 simulated cores.
Shapes to reproduce: patch-size curve has an interior optimum (or a
steep initial drop); grain curve is monotone-decreasing to a plateau,
with no blow-up at large grains (unlike structured Fig. 9a).
"""

import pytest

from repro.runtime import CostModel

from _common import bench_args, maybe_profile, print_series, reactor_app

CORES = 24
PATCH_SIZES = [50, 100, 250, 500, 1000, 2000]
GRAINS = [1, 2, 4, 8, 16, 32, 64]
GROUPS = 4


def run_patch_sizes() -> list[list]:
    rows = []
    for ps in PATCH_SIZES:
        app = reactor_app(26, CORES, patch_size=ps, groups=GROUPS)
        rep = app.sweep_report(CORES, cost=CostModel(groups=GROUPS))
        rows.append([ps, app.pset.num_patches, rep.makespan * 1e3,
                     rep.messages, rep.idle_fraction()])
    return rows


def run_grains() -> list[list]:
    app = reactor_app(26, CORES, patch_size=500, groups=GROUPS)
    rows = []
    for grain in GRAINS:
        rep = app.sweep_report(
            CORES, cost=CostModel(groups=GROUPS), grain=grain
        )
        rows.append([grain, rep.makespan * 1e3, rep.executions])
    return rows


@pytest.mark.benchmark(group="fig13a")
def test_fig13a_patch_size(benchmark):
    rows = benchmark.pedantic(run_patch_sizes, rounds=1, iterations=1)
    print_series(
        "Fig. 13a (left) - patch size, reactor mesh, S4, 4 groups",
        ["patch_cells", "num_patches", "time_ms", "messages", "idle_frac"],
        rows,
    )
    times = [r[2] for r in rows]
    # Interior optimum: both tiny patches (communication-bound) and
    # huge patches (downwind waiting) lose to a moderate size.
    best = times.index(min(times))
    assert 0 < best < len(times) - 1, f"optimum at the boundary: {times}"
    assert times[0] > min(times)
    assert times[-1] > 1.1 * min(times)
    # The coarsest decomposition sends the fewest messages.
    msgs = [r[3] for r in rows]
    assert msgs[-1] == min(msgs)


@pytest.mark.benchmark(group="fig13a")
def test_fig13a_cluster_grain(benchmark):
    rows = benchmark.pedantic(run_grains, rounds=1, iterations=1)
    print_series(
        "Fig. 13a (right) - clustering grain, reactor mesh",
        ["grain", "time_ms", "executions"],
        rows,
    )
    times = {r[0]: r[1] for r in rows}
    # Drops then plateaus; no structured-style blow-up at large grain.
    assert times[1] > times[16]
    assert times[64] < 1.3 * min(times.values())
if __name__ == "__main__":
    args = bench_args("Fig. 13a: patch-size and grain sensitivity")
    rows = maybe_profile(run_patch_sizes, "fig13a_patch", args.profile)
    print_series("Fig. 13a - patch size",
                 ["patch", "npatches", "time_ms", "messages", "idle_frac"],
                 rows)
    rows = maybe_profile(run_grains, "fig13a_grain", args.profile)
    print_series("Fig. 13a - grain", ["grain", "time_ms", "executions"], rows)

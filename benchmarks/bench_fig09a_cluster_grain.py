"""Fig. 9a: effect of the vertex-clustering grain on structured sweeps.

Paper setup: SnSweep-S, mesh 160x160x180, patch 20^3, S2, 96 cores;
runtime first drops steeply with the grain (less scheduling and
communication overhead) and rises again for excessive grains (deferred
communication delays downwind patches).

Scaled setup: mesh 32x32x36, patch 8x8x9, S2, 24 simulated cores.
Shape to reproduce: a U-curve - t(moderate grain) well below t(1), and
t(huge grain) above the minimum.
"""

import numpy as np
import pytest

from repro import DataDrivenRuntime, PatchSet, StructuredMesh
from repro.sweep import Material, MaterialMap, SnSolver, level_symmetric

from _common import MACHINE, bench_args, maybe_profile, print_series

GRAINS = [1, 8, 64, 256, 1024, 2048, 4096]
CORES = 24


def _solver(nprocs: int) -> tuple[PatchSet, SnSolver]:
    mesh = StructuredMesh(shape=(32, 32, 36))
    pset = PatchSet.from_structured(mesh, (8, 8, 9), nprocs=nprocs)
    mm = MaterialMap.uniform(Material.isotropic(1.0, 0.5), mesh.num_cells)
    solver = SnSolver(
        pset, level_symmetric(2), mm, np.ones((mesh.num_cells, 1)),
        strategy="slbd+slbd",
    )
    return pset, solver


def run_fig09a() -> list[list]:
    nprocs = MACHINE.layout(CORES, "hybrid").nprocs
    pset, solver = _solver(nprocs)
    rows = []
    for grain in GRAINS:
        programs, _ = solver.build_programs(compute=False, grain=grain)
        rep = DataDrivenRuntime(CORES, machine=MACHINE).run(
            programs, pset.patch_proc
        )
        rows.append([grain, rep.makespan * 1e3, rep.executions,
                     rep.messages, rep.idle_fraction()])
    return rows


@pytest.mark.benchmark(group="fig09a")
def test_fig09a_vertex_clustering_grain(benchmark):
    rows = benchmark.pedantic(run_fig09a, rounds=1, iterations=1)
    print_series(
        "Fig. 9a - vertex clustering grain (structured, S2, "
        f"{CORES} simulated cores)",
        ["grain", "time_ms", "executions", "messages", "idle_frac"],
        rows,
    )
    times = {r[0]: r[1] for r in rows}
    best = min(times.values())
    # Shape assertions (the paper's U-curve):
    assert times[64] < times[1], "moderate grain must beat grain=1"
    assert times[1] > 1.5 * best, "grain=1 pays heavy scheduling overhead"
    assert times[4096] > best, "excessive grain defers communication"
    # Executions drop monotonically with grain.
    execs = [r[2] for r in rows]
    assert all(a >= b for a, b in zip(execs, execs[1:]))
if __name__ == "__main__":
    args = bench_args("Fig. 9a: vertex-clustering grain sensitivity")
    rows = maybe_profile(run_fig09a, "fig09a", args.profile)
    print_series("Fig. 9a - vertex clustering grain",
                 ["grain", "time_ms", "executions", "messages", "idle_frac"],
                 rows)

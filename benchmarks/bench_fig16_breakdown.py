"""Fig. 16: runtime overhead analysis - time breakdown per core.

Paper setup: JSNT-S, 200^3 Kobayashi, one sweep iteration on the
coarsened graph, 192..3,072 cores.  Findings: JSweep-introduced
overhead (graph-op + pack/unpack) is moderately low (~23%), the major
loss is core idling (22-46%, growing with scale), communication takes
13-19%.

Scaled setup: Kobayashi-20, 24..192 simulated cores (DAG sweep with
the paper's clustering grain regime - our coarsened-graph build is
aggressive enough that CG mode drops overhead below 6%, see the
coarsened ablation).  Shapes to reproduce: overhead ~1/5-1/4 and
roughly scale-invariant; idle fraction growing with cores into the
paper's 22-46% band; kernel share shrinking as idle grows.

Accounting note: our "comm" category counts master-thread routing and
unpack *work*; time a core spends waiting on in-flight messages lands
in "idle" (the paper's instrumentation attributes some of it to comm,
hence its higher 13-19% comm share).
"""

import pytest

from repro.runtime import CATEGORIES

from _common import (
    bench_args, check_hb, koba_app, maybe_profile, print_series,
    write_chrome_trace,
)

CORES = [24, 48, 96, 192]
N = 20


def run_fig16(trace_dir: str | None = None, hb=None):
    rows = []
    reports = []
    for cores in CORES:
        app = koba_app(N, cores, patch=5, grain=64)
        rep = app.sweep_report(cores, coarsened=False,
                               trace=trace_dir is not None or hb is not None)
        if trace_dir is not None:
            write_chrome_trace(rep, f"fig16-koba{N}-{cores}cores", trace_dir)
        check_hb(rep, f"fig16-koba{N}-{cores}cores", hb)
        per_core = rep.avg_seconds_per_core()
        rows.append(
            [cores]
            + [per_core[c] * 1e3 for c in CATEGORIES]
            + [rep.overhead_fraction(), rep.idle_fraction()]
        )
        reports.append(rep)
    return rows, reports


def _print(rows):
    print_series(
        f"Fig. 16 - runtime breakdown, Kobayashi-{N}, one DAG sweep "
        "(avg ms per core; paper: overhead ~23%, idle 22-46%)",
        ["cores"] + list(CATEGORIES) + ["ovh_frac", "idle_frac"],
        rows,
    )


@pytest.mark.benchmark(group="fig16")
def test_fig16_runtime_breakdown(benchmark):
    rows, reports = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    _print(rows)
    idles = [rep.idle_fraction() for rep in reports]
    ovhs = [rep.overhead_fraction() for rep in reports]
    comms = [rep.comm_fraction() for rep in reports]
    # Idle grows with scale and reaches the paper's band.
    assert idles[-1] > idles[0]
    assert 0.2 < idles[-1] < 0.8
    # JSweep-introduced overhead is moderate (paper: ~23%) at every scale.
    assert all(0.05 < o < 0.35 for o in ovhs)
    # Communication is a visible but secondary consumer.
    assert all(c < 0.3 for c in comms)
    # Kernel + idle + overhead + comm account for everything.
    f = reports[0].breakdown.fractions()
    assert abs(sum(f.values()) - 1.0) < 1e-9


if __name__ == "__main__":
    args = bench_args("Fig. 16 runtime breakdown (use --trace to export "
                      "Chrome-trace JSON per run)")
    rows, _ = maybe_profile(
        lambda: run_fig16(trace_dir=args.trace, hb=args.check_hb),
        "fig16", args.profile,
    )
    _print(rows)

"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure of the paper's
evaluation (Sec. VI) at a scaled-down size; EXPERIMENTS.md maps each
paper artifact to its module here and records paper-vs-measured.

Scaling convention: simulated core counts and mesh resolutions are the
paper's divided by ~16 (strong-scaling sweeps keep the paper's 2x
grids), with work-per-core preserved within ~2x.  All runs use the
Tianhe-2-like machine model (12-core sockets, one MPI process per
socket, master core reserved).
"""

from __future__ import annotations

import argparse
import json
import os

from repro import JSNTS, JSNTU, Machine
from repro.runtime import CostModel
from repro.sweep import product_quadrature

#: Evaluation platform model (Tianhe-2: 2 x 12-core sockets per node).
MACHINE = Machine(cores_per_proc=12)

#: Scaled "Kobayashi-400" stand-ins: cells per axis.
KOBA_MIDDLE = 24  # paper: 400
KOBA_LARGE = 32  # paper: 800 (kept at 2x cells of the middle run per axis/4)

#: Scaled angle set (paper: 320 directions -> 24).
KOBA_ANGLES = (2, 12)


def koba_app(n: int, cores: int, patch: int = 6, grain: int = 1000,
             strategy: str = "slbd+slbd", mode: str = "hybrid"):
    """JSNT-S Kobayashi application at scaled size."""
    return JSNTS.kobayashi(
        n,
        total_cores=cores,
        mode=mode,
        machine=MACHINE,
        patch_shape=(patch, patch, patch),
        quadrature=product_quadrature(*KOBA_ANGLES),
        grain=grain,
        strategy=strategy,
    )


def ball_app(resolution: int, cores: int, patch_size: int = 500,
             grain: int = 64, strategy: str = "slbd+slbd",
             mode: str = "hybrid", groups: int = 1):
    """JSNT-U ball application (paper defaults: S4, patch 500, grain 64)."""
    return JSNTU.ball(
        resolution,
        total_cores=cores,
        mode=mode,
        machine=MACHINE,
        patch_size=patch_size,
        grain=grain,
        strategy=strategy,
        groups=groups,
    )


def reactor_app(resolution: int, cores: int, patch_size: int = 500,
                grain: int = 64, strategy: str = "slbd+slbd",
                mode: str = "hybrid", groups: int = 1):
    """JSNT-U reactor application."""
    return JSNTU.reactor(
        resolution,
        total_cores=cores,
        mode=mode,
        machine=MACHINE,
        patch_size=patch_size,
        grain=grain,
        strategy=strategy,
        groups=groups,
    )


def groups_cost(groups: int) -> CostModel:
    """Cost model with the energy-group multiplier set."""
    return CostModel(groups=groups)


def print_series(title: str, header: list[str], rows: list[list]) -> None:
    """Print a paper-style results table to stdout."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        cells = []
        for v, w in zip(row, widths):
            if isinstance(v, float):
                cells.append(f"{v:.4g}".rjust(w))
            else:
                cells.append(str(v).rjust(w))
        print("  ".join(cells))


def bench_args(
    description: str,
    argv: list[str] | None = None,
    extra=None,
) -> argparse.Namespace:
    """CLI for running one benchmark module as a plain script.

    ``pytest benchmarks/`` stays the bulk path; ``python benchmarks/
    bench_xxx.py --trace`` runs one benchmark standalone and exports a
    Chrome-trace JSON (``chrome://tracing`` / Perfetto) per DES run.
    ``--smoke`` selects the benchmark's CI-sized configuration.
    ``extra``, when given, is called with the parser to add
    benchmark-specific options before parsing.
    """
    ap = argparse.ArgumentParser(description=description)
    ap.add_argument(
        "--trace",
        nargs="?",
        const="traces",
        default=None,
        metavar="DIR",
        help="record structured event traces and write one "
        "Chrome-trace JSON per run into DIR (default: ./traces)",
    )
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="run the scaled-down CI smoke configuration",
    )
    ap.add_argument(
        "--check-hb",
        nargs="?",
        const=True,
        default=None,
        metavar="DIR",
        help="run the vector-clock happens-before checker over every "
        "DES run (arms tracing); with DIR, also export each run's HB "
        "record stream as DIR/<label>.hb.json for "
        "`python -m repro.analysis check-trace`",
    )
    ap.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help="arm durable-execution instrumentation: DES benches "
        "snapshot the runtime every N popped events (running each "
        "configuration twice to measure the cadence overhead); the "
        "service bench journals every transition to a write-ahead "
        "log.  Count/bytes/overhead land in the bench's JSON artifact",
    )
    ap.add_argument(
        "--profile",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="run the benchmark under cProfile and write the top-25 "
        "cumulative-time table to DIR/<bench>.pstats.txt plus the raw "
        "stats to DIR/<bench>.pstats (default DIR: the working "
        "directory, next to the benchmark's JSON artifacts)",
    )
    if extra is not None:
        extra(ap)
    return ap.parse_args(argv)


def snapshot_cadence_run(run, label: str, every: int, stats: list):
    """Measure one configuration's snapshot-cadence overhead.

    ``run(persist)`` must execute the DES run and return its report.
    Runs it twice - snapshotting off, then armed at ``every`` popped
    events into a throwaway directory - and appends one stats row
    (count, bytes, wall-time overhead %) to ``stats``.  Returns the
    armed run's report: snapshot-armed runs are bitwise-identical to
    unarmed ones, so the caller's series is unchanged.
    """
    import tempfile
    import time

    from repro.persist import SnapshotManager

    t0 = time.perf_counter()
    run(None)
    off = time.perf_counter() - t0
    with tempfile.TemporaryDirectory() as d:
        mgr = SnapshotManager(d, every=every, fsync=False)
        t0 = time.perf_counter()
        rep = run(mgr)
        on = time.perf_counter() - t0
    stats.append({
        "label": label,
        "every": every,
        "snapshots": rep.snapshots,
        "snapshot_bytes": rep.snapshot_bytes,
        "wall_off_s": off,
        "wall_armed_s": on,
        "overhead_pct": 100.0 * (on - off) / off if off > 0 else 0.0,
    })
    return rep


def write_snapshot_json(bench: str, every: int, stats: list) -> str:
    """Publish a bench's durability stats as ``BENCH_<bench>_snapshots.json``."""
    path = os.path.join(
        os.path.dirname(__file__), os.pardir,
        f"BENCH_{bench}_snapshots.json",
    )
    path = os.path.normpath(path)
    with open(path, "w") as fh:
        json.dump({"every": every, "rows": stats}, fh, indent=1)
    print(f"snapshots: {path} ({len(stats)} configurations)")
    return path


def maybe_profile(fn, label: str, opt):
    """Run ``fn()`` - under cProfile when ``opt`` (= args.profile) is set.

    Writes the top-25 cumulative-time entries to
    ``DIR/<label>.pstats.txt`` (human-readable, next to whatever JSON
    artifact the bench emits) and the raw profile to
    ``DIR/<label>.pstats`` for pstats/snakeviz tooling.  Returns
    ``fn()``'s result either way.
    """
    if opt is None:
        return fn()
    import cProfile
    import io
    import pstats

    os.makedirs(opt, exist_ok=True)
    prof = cProfile.Profile()
    result = prof.runcall(fn)
    prof.dump_stats(os.path.join(opt, f"{label}.pstats"))
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).sort_stats("cumulative").print_stats(25)
    path = os.path.join(opt, f"{label}.pstats.txt")
    with open(path, "w") as fh:
        fh.write(buf.getvalue())
    print(f"profile: {path} (top 25 by cumulative time)")
    return result


def write_chrome_trace(report, label: str, directory: str) -> str:
    """Export ``report``'s event trace as ``DIR/<label>.trace.json``."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{label}.trace.json")
    with open(path, "w") as fh:
        json.dump(report.to_chrome_trace(), fh)
    print(f"trace: {path} ({len(report.trace_events)} events)")
    return path


def check_hb(report, label: str, opt) -> None:
    """Happens-before-check one traced run (``opt`` = args.check_hb).

    ``opt`` is ``None`` (off), ``True`` (check only) or a directory
    (check + export the HB stream for ``repro.analysis check-trace``).
    Races abort the benchmark: a schedule that only *happened* to
    produce the right flux is not a result.
    """
    if opt is None:
        return
    from repro.analysis import check_report, dump_hb_json

    if opt is not True:
        os.makedirs(opt, exist_ok=True)
        path = os.path.join(opt, f"{label}.hb.json")
        n = dump_hb_json(report.hb_events, path)
        print(f"hb: {path} ({n} records)")
    races = check_report(report)
    if races:
        for r in races:
            print("  " + r.format())
        raise SystemExit(f"{label}: {len(races)} happens-before race(s)")
    print(f"hb: {label}: {len(report.hb_events)} records, race-free")


def efficiency(base_cores: int, base_time: float, cores: int, time: float) -> float:
    """Parallel efficiency normalized to the smallest configuration."""
    speedup = base_time / time if time > 0 else 0.0
    return speedup * base_cores / cores


def speedup(base_time: float, time: float) -> float:
    return base_time / time if time > 0 else 0.0
